#include "suffixtree/trie.h"

#include <cstring>

namespace era {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool GetPod(const std::string& in, std::size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

uint32_t PrefixTrie::GetOrCreate(const std::string& prefix) {
  uint32_t cur = 0;
  for (char c : prefix) {
    auto it = nodes_[cur].children.find(c);
    if (it == nodes_[cur].children.end()) {
      nodes_.emplace_back();
      uint32_t fresh = static_cast<uint32_t>(nodes_.size() - 1);
      nodes_[cur].children.emplace(c, fresh);
      cur = fresh;
    } else {
      cur = it->second;
    }
  }
  return cur;
}

Status PrefixTrie::InsertSubTree(const std::string& prefix,
                                 uint32_t subtree_id, uint64_t frequency) {
  if (prefix.empty()) {
    return Status::InvalidArgument("sub-tree prefix must be non-empty");
  }
  uint32_t node = GetOrCreate(prefix);
  if (nodes_[node].subtree_id >= 0) {
    return Status::InvalidArgument("duplicate sub-tree prefix: " + prefix);
  }
  if (!nodes_[node].children.empty()) {
    return Status::InvalidArgument(
        "sub-tree prefix is a proper prefix of another: " + prefix);
  }
  nodes_[node].subtree_id = static_cast<int32_t>(subtree_id);
  nodes_[node].subtree_freq = frequency;
  return Status::OK();
}

Status PrefixTrie::InsertTerminalLeaf(const std::string& prefix,
                                      uint64_t position) {
  uint32_t node = GetOrCreate(prefix);
  if (nodes_[node].terminal_leaf >= 0) {
    return Status::InvalidArgument("duplicate terminal leaf for: " + prefix);
  }
  nodes_[node].terminal_leaf = static_cast<int64_t>(position);
  return Status::OK();
}

PrefixTrie::DescendResult PrefixTrie::Descend(
    const std::string& pattern) const {
  DescendResult result;
  uint32_t cur = 0;
  std::size_t i = 0;
  while (i < pattern.size()) {
    auto it = nodes_[cur].children.find(pattern[i]);
    if (it == nodes_[cur].children.end()) break;
    cur = it->second;
    ++i;
  }
  result.node = cur;
  result.matched = i;
  result.pattern_exhausted = (i == pattern.size());
  return result;
}

uint64_t PrefixTrie::TotalFrequency(uint32_t node) const {
  const Node& n = nodes_[node];
  uint64_t total = n.subtree_freq;
  if (n.terminal_leaf >= 0) ++total;
  for (const auto& [sym, child] : n.children) {
    (void)sym;
    total += TotalFrequency(child);
  }
  return total;
}

void PrefixTrie::CollectInOrder(uint32_t node,
                                std::vector<int32_t>* subtree_ids,
                                std::vector<uint64_t>* terminal_leaves) const {
  const Node& n = nodes_[node];
  if (n.subtree_id >= 0) subtree_ids->push_back(n.subtree_id);
  for (const auto& [sym, child] : n.children) {
    (void)sym;
    CollectInOrder(child, subtree_ids, terminal_leaves);
  }
  // The terminal sorts after every alphabet symbol (see alphabet.h), so the
  // terminal leaf of this node comes last.
  if (n.terminal_leaf >= 0) {
    terminal_leaves->push_back(static_cast<uint64_t>(n.terminal_leaf));
  }
}

void PrefixTrie::CollectEntries(uint32_t node,
                                std::vector<Entry>* entries) const {
  const Node& n = nodes_[node];
  if (n.subtree_id >= 0) entries->push_back({n.subtree_id, 0});
  for (const auto& [sym, child] : n.children) {
    (void)sym;
    CollectEntries(child, entries);
  }
  if (n.terminal_leaf >= 0) {
    entries->push_back({-1, static_cast<uint64_t>(n.terminal_leaf)});
  }
}

std::string PrefixTrie::Serialize() const {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    PutU32(&out, static_cast<uint32_t>(n.subtree_id));
    PutU64(&out, n.subtree_freq);
    PutI64(&out, n.terminal_leaf);
    PutU32(&out, static_cast<uint32_t>(n.children.size()));
    for (const auto& [sym, child] : n.children) {
      out.push_back(sym);
      PutU32(&out, child);
    }
  }
  return out;
}

StatusOr<PrefixTrie> PrefixTrie::Deserialize(const std::string& bytes) {
  PrefixTrie trie;
  std::size_t pos = 0;
  uint32_t count = 0;
  if (!GetPod(bytes, &pos, &count) || count == 0) {
    return Status::Corruption("trie: bad node count");
  }
  trie.nodes_.assign(count, Node{});
  for (uint32_t i = 0; i < count; ++i) {
    Node& n = trie.nodes_[i];
    uint32_t subtree_id = 0;
    uint32_t num_children = 0;
    if (!GetPod(bytes, &pos, &subtree_id) ||
        !GetPod(bytes, &pos, &n.subtree_freq) ||
        !GetPod(bytes, &pos, &n.terminal_leaf) ||
        !GetPod(bytes, &pos, &num_children)) {
      return Status::Corruption("trie: truncated node");
    }
    n.subtree_id = static_cast<int32_t>(subtree_id);
    for (uint32_t c = 0; c < num_children; ++c) {
      if (pos >= bytes.size()) return Status::Corruption("trie: truncated");
      char sym = bytes[pos++];
      uint32_t child = 0;
      if (!GetPod(bytes, &pos, &child) || child >= count) {
        return Status::Corruption("trie: bad child reference");
      }
      n.children.emplace(sym, child);
    }
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trie: trailing bytes");
  }
  return trie;
}

uint64_t PrefixTrie::MemoryBytes() const {
  uint64_t total = nodes_.size() * sizeof(Node);
  for (const Node& n : nodes_) {
    total += n.children.size() * 48;  // rough map node overhead
  }
  return total;
}

namespace {

uint32_t TrieDepth(const PrefixTrie& trie, uint32_t node) {
  uint32_t depth = 0;
  for (const auto& [sym, child] : trie.node(node).children) {
    (void)sym;
    const uint32_t d = 1 + TrieDepth(trie, child);
    if (d > depth) depth = d;
  }
  return depth;
}

}  // namespace

void KmerDispatchTable::Build(const PrefixTrie& trie,
                              const std::string& alphabet_symbols) {
  code_.fill(-1);
  slots_.clear();
  k_ = 0;
  sigma_ = 0;

  const uint32_t depth = TrieDepth(trie, 0);
  if (depth == 0 || alphabet_symbols.empty()) return;
  for (std::size_t i = 0; i < alphabet_symbols.size(); ++i) {
    code_[static_cast<uint8_t>(alphabet_symbols[i])] =
        static_cast<int16_t>(i);
  }
  sigma_ = static_cast<uint32_t>(alphabet_symbols.size());

  // k = the partitioner's deepest prefix, capped so sigma^k <= kMaxSlots.
  uint32_t k = 0;
  uint64_t slots = 1;
  while (k < depth && slots * sigma_ <= kMaxSlots) {
    slots *= sigma_;
    ++k;
  }
  if (k == 0) return;
  k_ = k;

  // Enumerate every k-mer in lexicographic (row-major) order, reusing the
  // parent row's walk: slot(s[0..k-1]) extends slot(s[0..k-2]) by one symbol.
  std::vector<Slot> rows(1, Slot{0, 0});  // depth-0 row: the root
  std::string kmer;
  for (uint32_t d = 1; d <= k_; ++d) {
    std::vector<Slot> next;
    next.reserve(rows.size() * sigma_);
    for (const Slot& parent : rows) {
      for (uint32_t c = 0; c < sigma_; ++c) {
        Slot s = parent;
        if (s.matched == d - 1) {  // parent walk didn't stop early
          const auto& children = trie.node(s.node).children;
          auto it = children.find(alphabet_symbols[c]);
          if (it != children.end()) {
            s.node = it->second;
            s.matched = d;
          }
        }
        next.push_back(s);
      }
    }
    rows = std::move(next);
  }
  slots_ = std::move(rows);
}

PrefixTrie::DescendResult KmerDispatchTable::Route(
    const PrefixTrie& trie, const std::string& pattern) const {
  if (k_ == 0 || pattern.size() < k_) return trie.Descend(pattern);
  uint64_t idx = 0;
  for (uint32_t i = 0; i < k_; ++i) {
    const int16_t code = code_[static_cast<uint8_t>(pattern[i])];
    if (code < 0) return trie.Descend(pattern);
    idx = idx * sigma_ + static_cast<uint64_t>(code);
  }
  const Slot& s = slots_[idx];
  if (s.matched < k_) {
    // The trie walk stalled inside the first k symbols; the pattern cannot
    // be exhausted because it is at least k long.
    return {s.node, s.matched, false};
  }
  // Deep trie: continue the map walk where the table left off.
  PrefixTrie::DescendResult result;
  uint32_t cur = s.node;
  std::size_t i = k_;
  while (i < pattern.size()) {
    const auto& children = trie.node(cur).children;
    auto it = children.find(pattern[i]);
    if (it == children.end()) break;
    cur = it->second;
    ++i;
  }
  result.node = cur;
  result.matched = i;
  result.pattern_exhausted = (i == pattern.size());
  return result;
}

}  // namespace era
