#include "suffixtree/trie.h"

#include <cstring>

namespace era {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool GetPod(const std::string& in, std::size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

uint32_t PrefixTrie::GetOrCreate(const std::string& prefix) {
  uint32_t cur = 0;
  for (char c : prefix) {
    auto it = nodes_[cur].children.find(c);
    if (it == nodes_[cur].children.end()) {
      nodes_.emplace_back();
      uint32_t fresh = static_cast<uint32_t>(nodes_.size() - 1);
      nodes_[cur].children.emplace(c, fresh);
      cur = fresh;
    } else {
      cur = it->second;
    }
  }
  return cur;
}

Status PrefixTrie::InsertSubTree(const std::string& prefix,
                                 uint32_t subtree_id, uint64_t frequency) {
  if (prefix.empty()) {
    return Status::InvalidArgument("sub-tree prefix must be non-empty");
  }
  uint32_t node = GetOrCreate(prefix);
  if (nodes_[node].subtree_id >= 0) {
    return Status::InvalidArgument("duplicate sub-tree prefix: " + prefix);
  }
  if (!nodes_[node].children.empty()) {
    return Status::InvalidArgument(
        "sub-tree prefix is a proper prefix of another: " + prefix);
  }
  nodes_[node].subtree_id = static_cast<int32_t>(subtree_id);
  nodes_[node].subtree_freq = frequency;
  return Status::OK();
}

Status PrefixTrie::InsertTerminalLeaf(const std::string& prefix,
                                      uint64_t position) {
  uint32_t node = GetOrCreate(prefix);
  if (nodes_[node].terminal_leaf >= 0) {
    return Status::InvalidArgument("duplicate terminal leaf for: " + prefix);
  }
  nodes_[node].terminal_leaf = static_cast<int64_t>(position);
  return Status::OK();
}

PrefixTrie::DescendResult PrefixTrie::Descend(
    const std::string& pattern) const {
  DescendResult result;
  uint32_t cur = 0;
  std::size_t i = 0;
  while (i < pattern.size()) {
    auto it = nodes_[cur].children.find(pattern[i]);
    if (it == nodes_[cur].children.end()) break;
    cur = it->second;
    ++i;
  }
  result.node = cur;
  result.matched = i;
  result.pattern_exhausted = (i == pattern.size());
  return result;
}

uint64_t PrefixTrie::TotalFrequency(uint32_t node) const {
  const Node& n = nodes_[node];
  uint64_t total = n.subtree_freq;
  if (n.terminal_leaf >= 0) ++total;
  for (const auto& [sym, child] : n.children) {
    (void)sym;
    total += TotalFrequency(child);
  }
  return total;
}

void PrefixTrie::CollectInOrder(uint32_t node,
                                std::vector<int32_t>* subtree_ids,
                                std::vector<uint64_t>* terminal_leaves) const {
  const Node& n = nodes_[node];
  if (n.subtree_id >= 0) subtree_ids->push_back(n.subtree_id);
  for (const auto& [sym, child] : n.children) {
    (void)sym;
    CollectInOrder(child, subtree_ids, terminal_leaves);
  }
  // The terminal sorts after every alphabet symbol (see alphabet.h), so the
  // terminal leaf of this node comes last.
  if (n.terminal_leaf >= 0) {
    terminal_leaves->push_back(static_cast<uint64_t>(n.terminal_leaf));
  }
}

void PrefixTrie::CollectEntries(uint32_t node,
                                std::vector<Entry>* entries) const {
  const Node& n = nodes_[node];
  if (n.subtree_id >= 0) entries->push_back({n.subtree_id, 0});
  for (const auto& [sym, child] : n.children) {
    (void)sym;
    CollectEntries(child, entries);
  }
  if (n.terminal_leaf >= 0) {
    entries->push_back({-1, static_cast<uint64_t>(n.terminal_leaf)});
  }
}

std::string PrefixTrie::Serialize() const {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    PutU32(&out, static_cast<uint32_t>(n.subtree_id));
    PutU64(&out, n.subtree_freq);
    PutI64(&out, n.terminal_leaf);
    PutU32(&out, static_cast<uint32_t>(n.children.size()));
    for (const auto& [sym, child] : n.children) {
      out.push_back(sym);
      PutU32(&out, child);
    }
  }
  return out;
}

StatusOr<PrefixTrie> PrefixTrie::Deserialize(const std::string& bytes) {
  PrefixTrie trie;
  std::size_t pos = 0;
  uint32_t count = 0;
  if (!GetPod(bytes, &pos, &count) || count == 0) {
    return Status::Corruption("trie: bad node count");
  }
  trie.nodes_.assign(count, Node{});
  for (uint32_t i = 0; i < count; ++i) {
    Node& n = trie.nodes_[i];
    uint32_t subtree_id = 0;
    uint32_t num_children = 0;
    if (!GetPod(bytes, &pos, &subtree_id) ||
        !GetPod(bytes, &pos, &n.subtree_freq) ||
        !GetPod(bytes, &pos, &n.terminal_leaf) ||
        !GetPod(bytes, &pos, &num_children)) {
      return Status::Corruption("trie: truncated node");
    }
    n.subtree_id = static_cast<int32_t>(subtree_id);
    for (uint32_t c = 0; c < num_children; ++c) {
      if (pos >= bytes.size()) return Status::Corruption("trie: truncated");
      char sym = bytes[pos++];
      uint32_t child = 0;
      if (!GetPod(bytes, &pos, &child) || child >= count) {
        return Status::Corruption("trie: bad child reference");
      }
      n.children.emplace(sym, child);
    }
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trie: trailing bytes");
  }
  return trie;
}

uint64_t PrefixTrie::MemoryBytes() const {
  uint64_t total = nodes_.size() * sizeof(Node);
  for (const Node& n : nodes_) {
    total += n.children.size() * 48;  // rough map node overhead
  }
  return total;
}

}  // namespace era
