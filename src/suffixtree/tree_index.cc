#include "suffixtree/tree_index.h"

#include <cstdlib>
#include <sstream>

#include "common/crc32.h"
#include "suffixtree/serializer.h"

namespace era {

namespace {

std::string HexEncode(const std::string& in) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(in.size() * 2);
  for (unsigned char c : in) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

StatusOr<std::string> HexDecode(const std::string& in) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  if (in.size() % 2 != 0) return Status::Corruption("odd hex length");
  std::string out;
  out.reserve(in.size() / 2);
  for (std::size_t i = 0; i < in.size(); i += 2) {
    int hi = nibble(in[i]);
    int lo = nibble(in[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

uint32_t TreeIndex::AddSubTree(const std::string& prefix, uint64_t frequency,
                               const std::string& filename) {
  subtrees_.push_back({prefix, frequency, filename});
  return static_cast<uint32_t>(subtrees_.size() - 1);
}

Status TreeIndex::Save(Env* env, const std::string& dir) const {
  std::ostringstream os;
  os << "format: era-tree-index-v1\n";
  os << "text_path: " << text_.path << "\n";
  os << "text_length: " << text_.length << "\n";
  os << "alphabet: " << text_.alphabet.symbols() << "\n";
  os << "subtree_count: " << subtrees_.size() << "\n";
  for (const SubTreeEntry& e : subtrees_) {
    os << "subtree: " << e.prefix << " " << e.frequency << " " << e.filename
       << "\n";
  }
  os << "trie: " << HexEncode(trie_.Serialize()) << "\n";
  // Whole-file checksum line (over everything above) + atomic durable
  // publish: a reader either sees a complete, checksum-valid MANIFEST or
  // none at all.
  std::string body = os.str();
  std::ostringstream manifest;
  manifest << body << "crc: " << Crc32c(body.data(), body.size()) << "\n";
  return AtomicallyWriteFile(env, dir + "/MANIFEST", manifest.str());
}

StatusOr<TreeIndex> TreeIndex::Load(Env* env, const std::string& dir) {
  std::string manifest;
  ERA_RETURN_NOT_OK(env->ReadFileToString(dir + "/MANIFEST", &manifest));

  TreeIndex index;
  index.dir_ = dir;
  std::istringstream is(manifest);
  std::string line;
  bool saw_format = false;
  bool saw_crc = false;
  while (std::getline(is, line)) {
    std::size_t colon = line.find(": ");
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 2);
    if (key == "crc") {
      // Checksum of every byte before this line (which Save emits last).
      std::size_t line_pos = manifest.rfind("\n" + line);
      std::string body = line_pos == std::string::npos
                             ? std::string()
                             : manifest.substr(0, line_pos + 1);
      char* end = nullptr;
      uint32_t declared =
          static_cast<uint32_t>(std::strtoull(value.c_str(), &end, 10));
      if (end == value.c_str() ||
          Crc32c(body.data(), body.size()) != declared) {
        return Status::Corruption("MANIFEST checksum mismatch in " + dir);
      }
      saw_crc = true;
    } else if (key == "format") {
      if (value != "era-tree-index-v1") {
        return Status::NotSupported("unknown index format: " + value);
      }
      saw_format = true;
    } else if (key == "text_path") {
      index.text_.path = value;
    } else if (key == "text_length") {
      index.text_.length = std::stoull(value);
    } else if (key == "alphabet") {
      ERA_ASSIGN_OR_RETURN(index.text_.alphabet, Alphabet::Create(value));
    } else if (key == "subtree") {
      std::istringstream fields(value);
      SubTreeEntry e;
      if (!(fields >> e.prefix >> e.frequency >> e.filename)) {
        return Status::Corruption("bad subtree manifest line: " + line);
      }
      index.subtrees_.push_back(std::move(e));
    } else if (key == "trie") {
      ERA_ASSIGN_OR_RETURN(std::string blob, HexDecode(value));
      ERA_ASSIGN_OR_RETURN(index.trie_, PrefixTrie::Deserialize(blob));
    }
  }
  if (!saw_format) {
    return Status::Corruption("manifest missing format line in " + dir);
  }
  if (!saw_crc) {
    return Status::Corruption("manifest missing checksum line in " + dir);
  }
  index.dispatch_.Build(index.trie_, index.text_.alphabet.symbols());
  return index;
}

StatusOr<std::shared_ptr<const ServedSubTree>> TreeIndex::OpenSubTree(
    Env* env, uint32_t id, IoStats* stats, const QueryContext* ctx) const {
  if (id >= subtrees_.size()) {
    return Status::InvalidArgument("sub-tree id out of range");
  }
  Cache& cache = *cache_;
  Shard& shard = cache.shards[id % cache.shards.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(id);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
      ++shard.hits;
      if (stats != nullptr) ++stats->cache_hits;
      return it->second.tree;
    }
  }

  // Load outside the shard lock so a slow device never serializes the other
  // ids of this shard (concurrent misses on the same id may duplicate the
  // read; the insert below keeps exactly one copy). Transient device errors
  // are retried; Corruption fails straight through (and is never inserted
  // into the cache below).
  // The device-read boundary: a cache hit above always succeeds, but a dead
  // query does not get to start a sub-tree load.
  if (ctx != nullptr) ERA_RETURN_NOT_OK(ctx->Check());
  auto tree = std::make_shared<ServedSubTree>();
  std::string prefix;
  const std::string path = dir_ + "/" + subtrees_[id].filename;
  uint64_t retries = 0;
  Status load = RunWithRetry(
      cache.options.retry, ctx,
      [&] {
        *tree = ServedSubTree();
        return ReadServedSubTree(env, path, tree.get(), &prefix, stats);
      },
      &retries);
  if (stats != nullptr) stats->read_retries += retries;
  ERA_RETURN_NOT_OK(load);
  if (prefix != subtrees_[id].prefix) {
    return Status::Corruption("sub-tree prefix mismatch for id " +
                              std::to_string(id));
  }
  std::shared_ptr<const ServedSubTree> shared = std::move(tree);
  const uint64_t bytes = shared->MemoryBytes();

  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.misses;
  if (stats != nullptr) ++stats->cache_misses;
  auto it = shard.entries.find(id);
  if (it != shard.entries.end()) {
    // Another thread inserted while we were loading; keep its copy.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
    return it->second.tree;
  }
  shard.lru.push_front(id);
  shard.entries.emplace(id, Shard::Entry{shared, shard.lru.begin(), bytes});
  shard.resident_bytes += bytes;
  while (shard.resident_bytes > cache.per_shard_budget &&
         shard.entries.size() > 1) {
    uint32_t victim = shard.lru.back();
    auto vit = shard.entries.find(victim);
    shard.resident_bytes -= vit->second.bytes;
    shard.evicted_bytes += vit->second.bytes;
    if (stats != nullptr) stats->cache_evicted_bytes += vit->second.bytes;
    ++shard.evictions;
    shard.lru.pop_back();
    shard.entries.erase(vit);
  }
  return shared;
}

void TreeIndex::ConfigureCache(const TreeCacheOptions& options) const {
  cache_ = std::make_shared<Cache>(options);
}

void TreeIndex::EvictCache() const {
  for (Shard& shard : cache_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.lru.clear();
    shard.resident_bytes = 0;
  }
}

TreeIndex::CacheSnapshot TreeIndex::CacheStats() const {
  CacheSnapshot snap;
  for (Shard& shard : cache_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    snap.hits += shard.hits;
    snap.misses += shard.misses;
    snap.evictions += shard.evictions;
    snap.evicted_bytes += shard.evicted_bytes;
    snap.resident_bytes += shard.resident_bytes;
    snap.resident_trees += shard.entries.size();
  }
  return snap;
}

uint64_t TreeIndex::TotalSuffixes() const { return trie_.TotalFrequency(0); }

}  // namespace era
