#include "suffixtree/tree_index.h"

#include <sstream>

#include "suffixtree/serializer.h"

namespace era {

namespace {

std::string HexEncode(const std::string& in) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(in.size() * 2);
  for (unsigned char c : in) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

StatusOr<std::string> HexDecode(const std::string& in) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  if (in.size() % 2 != 0) return Status::Corruption("odd hex length");
  std::string out;
  out.reserve(in.size() / 2);
  for (std::size_t i = 0; i < in.size(); i += 2) {
    int hi = nibble(in[i]);
    int lo = nibble(in[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

uint32_t TreeIndex::AddSubTree(const std::string& prefix, uint64_t frequency,
                               const std::string& filename) {
  subtrees_.push_back({prefix, frequency, filename});
  return static_cast<uint32_t>(subtrees_.size() - 1);
}

Status TreeIndex::Save(Env* env, const std::string& dir) const {
  std::ostringstream os;
  os << "format: era-tree-index-v1\n";
  os << "text_path: " << text_.path << "\n";
  os << "text_length: " << text_.length << "\n";
  os << "alphabet: " << text_.alphabet.symbols() << "\n";
  os << "subtree_count: " << subtrees_.size() << "\n";
  for (const SubTreeEntry& e : subtrees_) {
    os << "subtree: " << e.prefix << " " << e.frequency << " " << e.filename
       << "\n";
  }
  os << "trie: " << HexEncode(trie_.Serialize()) << "\n";
  return env->WriteFile(dir + "/MANIFEST", os.str());
}

StatusOr<TreeIndex> TreeIndex::Load(Env* env, const std::string& dir) {
  std::string manifest;
  ERA_RETURN_NOT_OK(env->ReadFileToString(dir + "/MANIFEST", &manifest));

  TreeIndex index;
  index.dir_ = dir;
  std::istringstream is(manifest);
  std::string line;
  bool saw_format = false;
  while (std::getline(is, line)) {
    std::size_t colon = line.find(": ");
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 2);
    if (key == "format") {
      if (value != "era-tree-index-v1") {
        return Status::NotSupported("unknown index format: " + value);
      }
      saw_format = true;
    } else if (key == "text_path") {
      index.text_.path = value;
    } else if (key == "text_length") {
      index.text_.length = std::stoull(value);
    } else if (key == "alphabet") {
      ERA_ASSIGN_OR_RETURN(index.text_.alphabet, Alphabet::Create(value));
    } else if (key == "subtree") {
      std::istringstream fields(value);
      SubTreeEntry e;
      if (!(fields >> e.prefix >> e.frequency >> e.filename)) {
        return Status::Corruption("bad subtree manifest line: " + line);
      }
      index.subtrees_.push_back(std::move(e));
    } else if (key == "trie") {
      ERA_ASSIGN_OR_RETURN(std::string blob, HexDecode(value));
      ERA_ASSIGN_OR_RETURN(index.trie_, PrefixTrie::Deserialize(blob));
    }
  }
  if (!saw_format) return Status::Corruption("manifest missing format line");
  return index;
}

StatusOr<std::shared_ptr<const TreeBuffer>> TreeIndex::OpenSubTree(
    Env* env, uint32_t id, IoStats* stats) const {
  if (id >= subtrees_.size()) {
    return Status::InvalidArgument("sub-tree id out of range");
  }
  {
    std::lock_guard<std::mutex> lock(cache_->mutex);
    auto it = cache_->trees.find(id);
    if (it != cache_->trees.end()) return it->second;
  }
  auto tree = std::make_shared<TreeBuffer>();
  std::string prefix;
  ERA_RETURN_NOT_OK(ReadSubTree(env, dir_ + "/" + subtrees_[id].filename,
                                tree.get(), &prefix, stats));
  if (prefix != subtrees_[id].prefix) {
    return Status::Corruption("sub-tree prefix mismatch for id " +
                              std::to_string(id));
  }
  std::shared_ptr<const TreeBuffer> shared = std::move(tree);
  std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->trees.emplace(id, shared);
  return shared;
}

void TreeIndex::EvictCache() const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  cache_->trees.clear();
}

uint64_t TreeIndex::TotalSuffixes() const { return trie_.TotalFrequency(0); }

}  // namespace era
