#include "suffixtree/canonical.h"

namespace era {

SaLcp TreeToSaLcp(const TreeBuffer& tree) {
  SaLcp out;
  if (tree.size() == 0) return out;

  // Iterative DFS with explicit (node, depth, next_child) frames.
  // `pending_lcp` is updated every time the traversal moves between child
  // subtrees of a node at depth d; the last assignment before a leaf emission
  // is the depth of that leaf's LCA with the previously emitted leaf.
  struct Frame {
    uint32_t node;
    uint64_t depth;       // string depth at this node
    uint32_t next_child;  // next unvisited child
  };
  std::vector<Frame> stack;
  uint64_t pending_lcp = 0;
  bool first_leaf = true;

  const TreeNode& root = tree.node(0);
  if (root.IsLeaf()) {
    out.sa.push_back(root.leaf_id);
    return out;
  }
  stack.push_back({0, 0, root.first_child});

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child == kNilNode) {
      stack.pop_back();
      if (!stack.empty()) pending_lcp = stack.back().depth;
      continue;
    }
    uint32_t c = top.next_child;
    const TreeNode& child = tree.node(c);
    top.next_child = child.next_sibling;
    if (child.IsLeaf()) {
      if (!first_leaf) out.lcp.push_back(pending_lcp);
      out.sa.push_back(child.leaf_id);
      first_leaf = false;
      pending_lcp = top.depth;
    } else {
      stack.push_back({c, top.depth + child.edge_len, child.first_child});
    }
  }
  return out;
}

SaLcp TreeToSaLcp(const CountedTree& tree) {
  SaLcp out;
  if (tree.size() == 0) return out;

  // Same traversal as the linked overload; `next_child` is an index into the
  // contiguous child block instead of a sibling pointer.
  struct Frame {
    uint32_t node;
    uint64_t depth;       // string depth at this node
    uint32_t next_child;  // next unvisited child (0 .. num_children)
  };
  std::vector<Frame> stack;
  uint64_t pending_lcp = 0;
  bool first_leaf = true;

  const CountedNode& root = tree.node(0);
  if (root.IsLeaf()) {
    out.sa.push_back(root.leaf_id());
    return out;
  }
  stack.push_back({0, 0, 0});

  while (!stack.empty()) {
    Frame& top = stack.back();
    const CountedNode& node = tree.node(top.node);
    if (top.next_child == node.num_children) {
      stack.pop_back();
      if (!stack.empty()) pending_lcp = stack.back().depth;
      continue;
    }
    uint32_t c = node.children_begin + top.next_child;
    ++top.next_child;
    const CountedNode& child = tree.node(c);
    if (child.IsLeaf()) {
      if (!first_leaf) out.lcp.push_back(pending_lcp);
      out.sa.push_back(child.leaf_id());
      first_leaf = false;
      pending_lcp = top.depth;
    } else {
      stack.push_back({c, top.depth + child.edge_len, 0});
    }
  }
  return out;
}

SaLcp TreeToSaLcp(const ServedSubTree& tree) {
  SaLcp out;
  if (tree.size() == 0) return out;

  // Mirrors the CountedTree overload through the NodeView cursor, so the
  // traversal never materializes CountedNode records for compressed trees.
  struct Frame {
    uint32_t node;
    uint64_t depth;       // string depth at this node
    uint32_t next_child;  // next unvisited child (0 .. num_children)
  };
  std::vector<Frame> stack;
  uint64_t pending_lcp = 0;
  bool first_leaf = true;

  const NodeView root = tree.node(0);
  if (root.IsLeaf()) {
    out.sa.push_back(tree.LeafIdOf(root));
    return out;
  }
  stack.push_back({0, 0, 0});

  while (!stack.empty()) {
    Frame& top = stack.back();
    const NodeView node = tree.node(top.node);
    if (top.next_child == node.num_children) {
      stack.pop_back();
      if (!stack.empty()) pending_lcp = stack.back().depth;
      continue;
    }
    uint32_t c = node.children_begin + top.next_child;
    ++top.next_child;
    const NodeView child = tree.node(c);
    if (child.IsLeaf()) {
      if (!first_leaf) out.lcp.push_back(pending_lcp);
      out.sa.push_back(tree.LeafIdOf(child));
      first_leaf = false;
      pending_lcp = top.depth;
    } else {
      stack.push_back({c, top.depth + child.edge_len, 0});
    }
  }
  return out;
}

uint64_t CountLeaves(const TreeBuffer& tree) {
  uint64_t n = 0;
  for (uint32_t i = 0; i < tree.size(); ++i) {
    if (tree.node(i).IsLeaf()) ++n;
  }
  return n;
}

uint64_t CountLeaves(const CountedTree& tree) {
  uint64_t n = 0;
  for (uint32_t i = 0; i < tree.size(); ++i) {
    if (tree.node(i).IsLeaf()) ++n;
  }
  return n;
}

}  // namespace era
