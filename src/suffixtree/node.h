// On-disk / in-memory suffix-tree node layouts.
//
// Two 32-byte POD node formats share this header:
//
//  * TreeNode — the builder-side linked layout (serialized as format v1).
//    Edges are stored on their child node as (edge_start, edge_len) offsets
//    into the input string S — the O(n) representation of Section 2.
//    Children are linked through first_child/next_sibling in lexicographic
//    order of their first edge symbol, so a depth-first traversal emits
//    suffixes in lexicographic order.
//
//  * CountedNode — the serving-side counted layout (serialized as format
//    v2). Children are stored contiguously, sorted by first edge symbol
//    (child lookup is a binary search instead of a sibling-list walk), and
//    every node carries its subtree leaf count, so Count is a pure
//    root-to-node walk with zero leaf enumeration.
//
// The paper sizes sub-trees as 2 * f_p * sizeof(tree node); FM derives from
// sizeof(TreeNode) (see era/memory_layout.h).

#ifndef ERA_SUFFIXTREE_NODE_H_
#define ERA_SUFFIXTREE_NODE_H_

#include <cstdint>

namespace era {

/// On-disk sub-tree format a builder emits (numeric values match the file
/// header's version field). v1 (linked) is read-only legacy; builders choose
/// between the counted array (v2) and the bit-packed compressed form (v3).
enum class SubTreeFormat : uint32_t {
  kCounted = 2,
  kPacked = 3,
};

/// Sentinel for "no node".
inline constexpr uint32_t kNilNode = 0xFFFFFFFFu;
/// Sentinel leaf id for internal nodes.
inline constexpr uint64_t kNoLeaf = ~0ull;

/// One suffix-tree node (32 bytes, trivially copyable; serialized verbatim).
struct TreeNode {
  /// Offset in S of the first symbol of the incoming edge label.
  uint64_t edge_start = 0;
  /// For leaves: starting offset of the suffix this leaf represents.
  /// kNoLeaf for internal nodes.
  uint64_t leaf_id = kNoLeaf;
  /// Length of the incoming edge label (0 only for the root).
  uint32_t edge_len = 0;
  /// First child in lexicographic order; kNilNode if none.
  uint32_t first_child = kNilNode;
  /// Next sibling in lexicographic order; kNilNode if last.
  uint32_t next_sibling = kNilNode;
  /// Reserved/padding (keeps the struct at 32 bytes).
  uint32_t reserved = 0;

  bool IsLeaf() const { return leaf_id != kNoLeaf; }
};

static_assert(sizeof(TreeNode) == 32, "TreeNode must stay 32 bytes");

/// One node of the counted serving layout (format v2; 32 bytes, trivially
/// copyable; serialized verbatim).
///
/// The writer lays nodes out depth-first, reserving each node's child block
/// the moment the node is first visited. Two structural guarantees follow,
/// and the reader enforces both:
///   * the children of a node occupy the contiguous slot range
///     [children_begin, children_begin + num_children), sorted by the first
///     symbol of their incoming edge;
///   * the strict descendants of a node occupy one contiguous slot range
///     starting at children_begin, so collecting the occurrences under a
///     match is a linear scan that stops after subtree_leaf_count leaves.
/// children_begin > own index for every internal node, which also bounds
/// every traversal (no cycles are representable).
struct CountedNode {
  /// Offset in S of the first symbol of the incoming edge label.
  uint64_t edge_start = 0;
  /// Leaves (num_children == 0): starting offset of the suffix this leaf
  /// represents. Internal nodes: number of leaves in this node's subtree —
  /// the Count answer for a pattern ending on this node's incoming edge.
  uint64_t leaf_or_count = 0;
  /// Length of the incoming edge label (0 only for the root).
  uint32_t edge_len = 0;
  /// First slot of the contiguous child block (internal nodes only).
  uint32_t children_begin = 0;
  /// Number of children; 0 discriminates leaves.
  uint32_t num_children = 0;
  /// Reserved/padding (keeps the struct at 32 bytes). Earmarked for caching
  /// the first symbol of the incoming edge, which would make child binary
  /// search text-free; the writer cannot populate it today because it has no
  /// text access (readers resolve first symbols through their session's
  /// buffered reader instead).
  uint32_t reserved = 0;

  bool IsLeaf() const { return num_children == 0; }
  /// Suffix offset of a leaf (meaningless for internal nodes).
  uint64_t leaf_id() const { return leaf_or_count; }
  /// Leaves in this node's subtree (1 for a leaf).
  uint64_t LeafCount() const { return IsLeaf() ? 1 : leaf_or_count; }
};

static_assert(sizeof(CountedNode) == 32, "CountedNode must stay 32 bytes");

}  // namespace era

#endif  // ERA_SUFFIXTREE_NODE_H_
