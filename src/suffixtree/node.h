// On-disk / in-memory suffix-tree node layout.
//
// A sub-tree is a flat array of 32-byte POD nodes. Edges are stored on their
// child node as (edge_start, edge_len) offsets into the input string S —
// the O(n) representation of Section 2. Children are linked through
// first_child/next_sibling in lexicographic order of their first edge symbol,
// so a depth-first traversal emits suffixes in lexicographic order.
//
// The paper sizes sub-trees as 2 * f_p * sizeof(tree node); FM derives from
// sizeof(TreeNode) (see era/memory_layout.h).

#ifndef ERA_SUFFIXTREE_NODE_H_
#define ERA_SUFFIXTREE_NODE_H_

#include <cstdint>

namespace era {

/// Sentinel for "no node".
inline constexpr uint32_t kNilNode = 0xFFFFFFFFu;
/// Sentinel leaf id for internal nodes.
inline constexpr uint64_t kNoLeaf = ~0ull;

/// One suffix-tree node (32 bytes, trivially copyable; serialized verbatim).
struct TreeNode {
  /// Offset in S of the first symbol of the incoming edge label.
  uint64_t edge_start = 0;
  /// For leaves: starting offset of the suffix this leaf represents.
  /// kNoLeaf for internal nodes.
  uint64_t leaf_id = kNoLeaf;
  /// Length of the incoming edge label (0 only for the root).
  uint32_t edge_len = 0;
  /// First child in lexicographic order; kNilNode if none.
  uint32_t first_child = kNilNode;
  /// Next sibling in lexicographic order; kNilNode if last.
  uint32_t next_sibling = kNilNode;
  /// Reserved/padding (keeps the struct at 32 bytes).
  uint32_t reserved = 0;

  bool IsLeaf() const { return leaf_id != kNoLeaf; }
};

static_assert(sizeof(TreeNode) == 32, "TreeNode must stay 32 bytes");

}  // namespace era

#endif  // ERA_SUFFIXTREE_NODE_H_
