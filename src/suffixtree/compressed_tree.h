// Format-v3 compressed sub-tree: the serving form that is cached without
// inflating back to CountedNode.
//
// On-disk payload (after the shared 32-byte file header + prefix bytes):
//
//   [PackedHeader]                 72 bytes, POD, little-endian
//   [bit-packed node records]      node i at bit i * record_bits; fields in
//                                  order edge_start, edge_len, count,
//                                  leaf_ref, children_begin, num_children,
//                                  each in its width-minimal bit width
//                                  (BitWidth of the per-subtree maximum,
//                                  recorded in the header)
//   [leaf restart array]           num_restarts x uint64 byte offsets into
//                                  the leaf stream, one per restart block
//   [leaf stream]                  leaf suffix offsets in SLOT order; blocks
//                                  of leaf_restart_interval values, each
//                                  block an absolute varint followed by
//                                  zigzag-delta varints
//
// Field semantics lean on the canonical counted DFS layout (node.h): the
// strict descendants of node u occupy one contiguous slot range starting at
// children_begin(u), so the leaves under u are exactly the leaf slots with
// slot-order ranks [leaf_ref(u), leaf_ref(u) + count(u)) where
//   leaf_ref(leaf)     = number of leaf slots before it (its slot rank), and
//   leaf_ref(internal) = number of leaf slots before children_begin(u).
// That turns CollectLeaves into a lazy range decode of the leaf stream —
// restart-seek to the first block, stop after `limit` values — and keeps
// Count a pure record read (`count` is the stored subtree leaf count).
//
// Everything here is validated once in FromPayload (widths match recorded
// maxima, structural pass mirroring ValidateCountedLayout, leaf-stream
// restarts and monotone block structure); after that node()/LeafId() are
// infallible and DecodeLeafRange only fails on cancellation.

#ifndef ERA_SUFFIXTREE_COMPRESSED_TREE_H_
#define ERA_SUFFIXTREE_COMPRESSED_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "suffixtree/tree_buffer.h"

namespace era {

struct QueryContext;

/// Fixed per-subtree header at the start of a v3 payload.
struct PackedHeader {
  uint64_t leaf_count = 0;         // leaf slots (== root subtree count)
  uint64_t max_edge_start = 0;     // per-field maxima the widths derive from
  uint64_t max_count = 0;
  uint64_t max_leaf_ref = 0;
  uint64_t leaf_stream_bytes = 0;  // varint leaf stream size in bytes
  uint32_t max_edge_len = 0;
  uint32_t max_children_begin = 0;
  uint32_t max_num_children = 0;
  uint32_t leaf_restart_interval = 0;  // values per restart block
  uint32_t num_restarts = 0;           // == ceil(leaf_count / interval)
  uint8_t w_edge_start = 0;            // bit widths; w_x == BitWidth(max_x)
  uint8_t w_edge_len = 0;
  uint8_t w_count = 0;
  uint8_t w_leaf_ref = 0;
  uint8_t w_children_begin = 0;
  uint8_t w_num_children = 0;
  uint8_t pad[6] = {0, 0, 0, 0, 0, 0};
};

static_assert(sizeof(PackedHeader) == 72, "PackedHeader must stay 72 bytes");

/// Decoded view of one packed node. Mirrors CountedNode plus the leaf
/// reference; cheap to return by value.
struct NodeView {
  uint64_t edge_start = 0;
  uint64_t count = 0;     // leaves in this node's subtree (1 for a leaf)
  uint64_t leaf_ref = 0;  // see file comment
  uint32_t edge_len = 0;
  uint32_t children_begin = 0;
  uint32_t num_children = 0;

  bool IsLeaf() const { return num_children == 0; }
};

/// A validated v3 payload served in place: random node access via BitReader,
/// lazy leaf-range decode via the restart array. Immutable after FromPayload.
class CompressedSubTree {
 public:
  CompressedSubTree() = default;
  CompressedSubTree(CompressedSubTree&&) = default;
  CompressedSubTree& operator=(CompressedSubTree&&) = default;

  /// Encodes `tree` (canonical counted layout; caller has validated it) into
  /// a v3 payload. Deterministic: same tree, same bytes.
  static std::string EncodePayload(const CountedTree& tree);

  /// Parses + fully validates a payload of `node_count` nodes. Returns
  /// Corruption on any structural or size inconsistency. Takes the payload
  /// by value and keeps it (plus reader pad) as the resident blob.
  static StatusOr<CompressedSubTree> FromPayload(std::string payload,
                                                 uint64_t node_count);

  uint32_t size() const { return node_count_; }
  uint64_t LeafCount() const { return header_.leaf_count; }
  /// Resident bytes — what the byte-budgeted cache charges.
  uint64_t MemoryBytes() const { return blob_.size() + sizeof(*this); }
  /// Payload bytes as stored on disk (no reader pad).
  uint64_t PayloadBytes() const { return payload_bytes_; }

  /// Decodes node `i` (i < size(); infallible post-validation).
  NodeView node(uint32_t i) const;

  /// Suffix offset of the leaf with slot-order rank `rank` (< LeafCount()).
  uint64_t LeafId(uint64_t rank) const;

  /// Appends the suffix offsets of leaf ranks [rank_begin, rank_begin +
  /// count) to `out`, in slot order, stopping early once `limit` total
  /// values have been appended this call. `ctx` (nullable) is checked
  /// periodically; its error aborts the decode.
  Status DecodeLeafRange(uint64_t rank_begin, uint64_t count,
                         const QueryContext* ctx, std::size_t limit,
                         std::vector<uint64_t>* out) const;

  /// Exact reconstruction of the counted form this payload was encoded from
  /// (byte-identical nodes). Used by consumers that need CountedNode — the
  /// validator, TRELLIS merge, v3→v2 conversion.
  StatusOr<CountedTree> Inflate() const;

  const PackedHeader& header() const { return header_; }

 private:
  std::string blob_;  // payload + kBitReaderPadBytes zero tail
  PackedHeader header_;
  uint64_t payload_bytes_ = 0;
  uint64_t records_off_ = 0;   // byte offset of packed records in blob_
  uint64_t restarts_off_ = 0;  // byte offset of the restart array
  uint64_t leaves_off_ = 0;    // byte offset of the leaf stream
  uint32_t node_count_ = 0;
  uint32_t record_bits_ = 0;   // sum of the six field widths
};

/// One request's answer inside a shared leaf buffer: `buffer[offset,
/// offset + count)` are the suffix offsets of the leaves under the
/// requested slot, in slot order.
struct LeafSlice {
  std::size_t offset = 0;
  std::size_t count = 0;
};

/// What TreeIndex caches and the query path walks: either a CountedTree
/// (v1/v2 files) or a CompressedSubTree (v3 files), behind one NodeView
/// cursor API so MatchInSubTree/CollectLeaves never branch on format except
/// through this type.
class ServedSubTree {
 public:
  ServedSubTree() = default;
  explicit ServedSubTree(CountedTree tree)
      : counted_(std::move(tree)), compressed_(false) {}
  explicit ServedSubTree(CompressedSubTree tree)
      : packed_(std::move(tree)), compressed_(true) {}
  ServedSubTree(ServedSubTree&&) = default;
  ServedSubTree& operator=(ServedSubTree&&) = default;

  bool compressed() const { return compressed_; }

  uint32_t size() const {
    return compressed_ ? packed_.size() : counted_.size();
  }
  uint64_t LeafCount() const {
    return compressed_ ? packed_.LeafCount() : counted_.LeafCount();
  }
  /// Resident bytes — the cache charge. This is where v3 wins: the packed
  /// blob instead of 32 bytes/node.
  uint64_t MemoryBytes() const {
    return compressed_ ? packed_.MemoryBytes() : counted_.MemoryBytes();
  }

  NodeView node(uint32_t i) const;

  /// Suffix offset of leaf `v` (v.IsLeaf() must hold).
  uint64_t LeafIdOf(const NodeView& v) const {
    return compressed_ ? packed_.LeafId(v.leaf_ref) : v.leaf_ref;
  }

  /// Appends the suffix offsets of all leaves under slot `slot` to `out`
  /// (slot order), stopping after `limit` appended values. `ctx` nullable.
  Status CollectLeaves(uint32_t slot, const QueryContext* ctx,
                       std::size_t limit, std::vector<uint64_t>* out) const;

  /// Batched leaf enumeration: resolves every slot in `slots` in ONE pass
  /// over the tree's leaf storage instead of one CollectLeaves per slot.
  /// Appends leaves to `buffer` and fills `slices` (index-aligned with
  /// `slots`; offsets are absolute indices into `buffer`). Exploits the
  /// laminar-family property of match loci — two slots' leaf ranges are
  /// nested or disjoint, never partially overlapping — so nested requests
  /// alias one decoded run (v3: merged restart-block decodes; v2: one
  /// forward descendant scan per maximal run, skipping the gaps between
  /// disjoint requests). Duplicate slots are fine and share a slice.
  /// `ctx` (nullable) is checked periodically.
  Status CollectLeafSlices(const std::vector<uint32_t>& slots,
                           const QueryContext* ctx,
                           std::vector<uint64_t>* buffer,
                           std::vector<LeafSlice>* slices) const;

  /// Counted form (inflates v3; cheap reference for v1/v2).
  StatusOr<CountedTree> Inflate() const;

  /// Direct access for counted-backed trees only (compressed() == false).
  const CountedTree& counted() const { return counted_; }
  const CompressedSubTree& packed() const { return packed_; }

 private:
  CountedTree counted_;
  CompressedSubTree packed_;
  bool compressed_ = false;
};

}  // namespace era

#endif  // ERA_SUFFIXTREE_COMPRESSED_TREE_H_
