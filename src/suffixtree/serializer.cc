#include "suffixtree/serializer.h"

#include <cstring>

#include "common/crc32.h"

namespace era {

namespace {

constexpr char kMagic[8] = {'E', 'R', 'A', 'S', 'U', 'B', 'T', 'R'};
constexpr uint32_t kVersion = 1;

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t prefix_len;
  uint64_t node_count;
  uint32_t crc;
  uint32_t reserved;
};
static_assert(sizeof(Header) == 32, "keep the header fixed-size");

}  // namespace

Status WriteSubTree(Env* env, const std::string& path,
                    const std::string& prefix, const TreeBuffer& tree,
                    IoStats* stats) {
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.prefix_len = static_cast<uint32_t>(prefix.size());
  header.node_count = tree.size();
  header.reserved = 0;
  const char* node_bytes =
      reinterpret_cast<const char*>(tree.nodes().data());
  std::size_t node_size = tree.nodes().size() * sizeof(TreeNode);
  header.crc = Crc32(node_bytes, node_size,
                     Crc32(prefix.data(), prefix.size()));

  ERA_ASSIGN_OR_RETURN(auto file, env->NewWritable(path));
  ERA_RETURN_NOT_OK(
      file->Append(reinterpret_cast<const char*>(&header), sizeof(header)));
  ERA_RETURN_NOT_OK(file->Append(prefix.data(), prefix.size()));
  ERA_RETURN_NOT_OK(file->Append(node_bytes, node_size));
  ERA_RETURN_NOT_OK(file->Close());
  if (stats != nullptr) {
    stats->bytes_written += sizeof(header) + prefix.size() + node_size;
  }
  return Status::OK();
}

Status ReadSubTree(Env* env, const std::string& path, TreeBuffer* tree,
                   std::string* prefix_out, IoStats* stats) {
  ERA_ASSIGN_OR_RETURN(auto file, env->OpenRandomAccess(path));
  Header header;
  std::size_t got = 0;
  ERA_RETURN_NOT_OK(file->Read(0, sizeof(header),
                               reinterpret_cast<char*>(&header), &got));
  if (got != sizeof(header) ||
      std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad sub-tree magic in " + path);
  }
  if (header.version != kVersion) {
    return Status::NotSupported("unsupported sub-tree version in " + path);
  }

  std::string prefix(header.prefix_len, '\0');
  ERA_RETURN_NOT_OK(
      file->Read(sizeof(header), prefix.size(), prefix.data(), &got));
  if (got != prefix.size()) {
    return Status::Corruption("truncated prefix in " + path);
  }

  std::size_t node_bytes = header.node_count * sizeof(TreeNode);
  tree->mutable_nodes().resize(header.node_count);
  ERA_RETURN_NOT_OK(file->Read(
      sizeof(header) + prefix.size(), node_bytes,
      reinterpret_cast<char*>(tree->mutable_nodes().data()), &got));
  if (got != node_bytes) {
    return Status::Corruption("truncated node array in " + path);
  }

  uint32_t crc = Crc32(tree->mutable_nodes().data(), node_bytes,
                       Crc32(prefix.data(), prefix.size()));
  if (crc != header.crc) {
    return Status::Corruption("CRC mismatch in " + path);
  }
  if (header.node_count == 0) {
    return Status::Corruption("empty sub-tree in " + path);
  }
  if (prefix_out != nullptr) *prefix_out = std::move(prefix);
  if (stats != nullptr) {
    stats->bytes_read += sizeof(header) + header.prefix_len + node_bytes;
    ++stats->seeks;  // sub-tree loads are random accesses
  }
  return Status::OK();
}

}  // namespace era
