#include "suffixtree/serializer.h"

#include <cstring>
#include <vector>

#include "common/codec.h"
#include "common/crc32.h"

namespace era {

namespace {

constexpr char kMagic[8] = {'E', 'R', 'A', 'S', 'U', 'B', 'T', 'R'};
constexpr uint32_t kVersionLinked = 1;
constexpr uint32_t kVersionCounted = 2;
constexpr uint32_t kVersionPacked = 3;

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t prefix_len;
  uint64_t node_count;
  uint32_t crc;
  uint32_t reserved;
};
static_assert(sizeof(Header) == 32, "keep the header fixed-size");

/// v1 checksums with IEEE CRC-32 (what legacy files carry); v2/v3 with the
/// hardware-dispatched CRC-32C.
uint32_t PayloadCrc(uint32_t version, const std::string& prefix,
                    const void* payload, std::size_t payload_bytes) {
  if (version == kVersionLinked) {
    return Crc32(payload, payload_bytes, Crc32(prefix.data(), prefix.size()));
  }
  return Crc32c(payload, payload_bytes, Crc32c(prefix.data(), prefix.size()));
}

Status WritePayload(Env* env, const std::string& path,
                    const std::string& prefix, uint32_t version,
                    const void* payload, uint64_t node_count,
                    std::size_t payload_bytes, IoStats* stats,
                    uint32_t* file_crc) {
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = version;
  header.prefix_len = static_cast<uint32_t>(prefix.size());
  header.node_count = node_count;
  header.reserved = 0;
  header.crc = PayloadCrc(version, prefix, payload, payload_bytes);

  // Atomic + durable: stream into <path>.tmp, Sync, rename. A crash leaves
  // either no file or the complete file, never a torn sub-tree a serving
  // TreeIndex could open.
  ERA_ASSIGN_OR_RETURN(AtomicFileWriter writer,
                       AtomicFileWriter::Open(env, path));
  ERA_RETURN_NOT_OK(writer.Append(reinterpret_cast<const char*>(&header),
                                  sizeof(header)));
  ERA_RETURN_NOT_OK(writer.Append(prefix.data(), prefix.size()));
  ERA_RETURN_NOT_OK(
      writer.Append(static_cast<const char*>(payload), payload_bytes));
  ERA_RETURN_NOT_OK(writer.Commit());
  if (file_crc != nullptr) *file_crc = writer.crc32c();
  if (stats != nullptr) {
    stats->bytes_written += sizeof(header) + prefix.size() + payload_bytes;
  }
  return Status::OK();
}

/// Reads header + prefix + payload (validating magic, version, CRC and a
/// non-empty node count). Exactly one of `v1_nodes`/`v2_nodes`/`v3_payload`
/// is filled, selected by the version on disk; `*version_out` reports which.
/// The v3 payload is the raw byte string (decoded and structure-checked by
/// CompressedSubTree::FromPayload).
Status ReadPayload(Env* env, const std::string& path,
                   std::vector<TreeNode>* v1_nodes,
                   std::vector<CountedNode>* v2_nodes, std::string* v3_payload,
                   uint64_t* node_count_out, uint32_t* version_out,
                   std::string* prefix_out, IoStats* stats) {
  ERA_ASSIGN_OR_RETURN(auto file, env->OpenRandomAccess(path));
  Header header;
  std::size_t got = 0;
  ERA_RETURN_NOT_OK(file->Read(0, sizeof(header),
                               reinterpret_cast<char*>(&header), &got));
  if (got != sizeof(header) ||
      std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad sub-tree magic in " + path);
  }
  if (header.version != kVersionLinked && header.version != kVersionCounted &&
      header.version != kVersionPacked) {
    return Status::NotSupported("unsupported sub-tree version in " + path);
  }

  const uint64_t file_size = file->Size();
  if (sizeof(header) + header.prefix_len > file_size) {
    return Status::Corruption("truncated prefix in " + path);
  }
  std::string prefix(header.prefix_len, '\0');
  ERA_RETURN_NOT_OK(
      file->Read(sizeof(header), prefix.size(), prefix.data(), &got));
  if (got != prefix.size()) {
    return Status::Corruption("truncated prefix in " + path);
  }

  std::size_t payload_bytes;
  char* payload_dst;
  if (header.version == kVersionPacked) {
    // v3 payload size is whatever follows the prefix; the packed decoder
    // cross-checks it against the node count and recorded section sizes.
    payload_bytes = file_size - sizeof(header) - prefix.size();
    v3_payload->resize(payload_bytes);
    payload_dst = v3_payload->data();
  } else {
    static_assert(sizeof(TreeNode) == sizeof(CountedNode),
                  "both node formats are 32 bytes");
    // Guard the allocation below against a corrupt count before trusting it.
    if (header.node_count > file_size / sizeof(TreeNode)) {
      return Status::Corruption("node count exceeds file size in " + path);
    }
    payload_bytes = header.node_count * sizeof(TreeNode);
    if (header.version == kVersionLinked) {
      v1_nodes->resize(header.node_count);
      payload_dst = reinterpret_cast<char*>(v1_nodes->data());
    } else {
      v2_nodes->resize(header.node_count);
      payload_dst = reinterpret_cast<char*>(v2_nodes->data());
    }
  }
  ERA_RETURN_NOT_OK(file->Read(sizeof(header) + prefix.size(), payload_bytes,
                               payload_dst, &got));
  if (got != payload_bytes) {
    return Status::Corruption("truncated node array in " + path);
  }

  uint32_t crc = PayloadCrc(header.version, prefix, payload_dst,
                            payload_bytes);
  if (crc != header.crc) {
    return Status::Corruption("CRC mismatch in " + path);
  }
  if (header.node_count == 0) {
    return Status::Corruption("empty sub-tree in " + path);
  }
  if (node_count_out != nullptr) *node_count_out = header.node_count;
  *version_out = header.version;
  if (prefix_out != nullptr) *prefix_out = std::move(prefix);
  if (stats != nullptr) {
    stats->bytes_read += sizeof(header) + header.prefix_len + payload_bytes;
    ++stats->seeks;  // sub-tree loads are random accesses
  }
  return Status::OK();
}

}  // namespace

Status WriteCountedSubTree(Env* env, const std::string& path,
                           const std::string& prefix, const CountedTree& tree,
                           IoStats* stats, uint32_t* file_crc,
                           SubTreeFormat format) {
  if (format == SubTreeFormat::kPacked) {
    const std::string payload = CompressedSubTree::EncodePayload(tree);
    return WritePayload(env, path, prefix, kVersionPacked, payload.data(),
                        tree.size(), payload.size(), stats, file_crc);
  }
  return WritePayload(env, path, prefix, kVersionCounted, tree.nodes().data(),
                      tree.size(), tree.size() * sizeof(CountedNode), stats,
                      file_crc);
}

Status WriteSubTree(Env* env, const std::string& path,
                    const std::string& prefix, const TreeBuffer& tree,
                    IoStats* stats, uint32_t* file_crc, SubTreeFormat format) {
  ERA_ASSIGN_OR_RETURN(CountedTree counted, BuildCountedTree(tree));
  return WriteCountedSubTree(env, path, prefix, counted, stats, file_crc,
                             format);
}

Status WriteSubTreeV1(Env* env, const std::string& path,
                      const std::string& prefix, const TreeBuffer& tree,
                      IoStats* stats) {
  return WritePayload(env, path, prefix, kVersionLinked, tree.nodes().data(),
                      tree.size(), tree.nodes().size() * sizeof(TreeNode),
                      stats, nullptr);
}

Status ReadSubTree(Env* env, const std::string& path, TreeBuffer* tree,
                   std::string* prefix_out, IoStats* stats) {
  CountedTree counted;
  std::vector<TreeNode> v1_nodes;
  std::string v3_payload;
  uint64_t node_count = 0;
  uint32_t version = 0;
  ERA_RETURN_NOT_OK(ReadPayload(env, path, &v1_nodes,
                                &counted.mutable_nodes(), &v3_payload,
                                &node_count, &version, prefix_out, stats));
  if (version == kVersionLinked) {
    tree->mutable_nodes() = std::move(v1_nodes);
    return Status::OK();
  }
  if (version == kVersionPacked) {
    auto packed =
        CompressedSubTree::FromPayload(std::move(v3_payload), node_count);
    if (!packed.ok()) {
      return packed.status().WithContext("packed sub-tree " + path);
    }
    ERA_ASSIGN_OR_RETURN(counted, packed->Inflate());
  } else if (Status s = ValidateCountedLayout(counted); !s.ok()) {
    return Status::Corruption(s.message() + " in " + path);
  }
  ERA_ASSIGN_OR_RETURN(*tree, LinkedFromCounted(counted));
  return Status::OK();
}

Status ReadCountedSubTree(Env* env, const std::string& path, CountedTree* tree,
                          std::string* prefix_out, IoStats* stats) {
  std::vector<TreeNode> v1_nodes;
  std::string v3_payload;
  uint64_t node_count = 0;
  uint32_t version = 0;
  ERA_RETURN_NOT_OK(ReadPayload(env, path, &v1_nodes, &tree->mutable_nodes(),
                                &v3_payload, &node_count, &version, prefix_out,
                                stats));
  if (version == kVersionCounted) {
    if (Status s = ValidateCountedLayout(*tree); !s.ok()) {
      return Status::Corruption(s.message() + " in " + path);
    }
    return Status::OK();
  }
  if (version == kVersionPacked) {
    auto packed =
        CompressedSubTree::FromPayload(std::move(v3_payload), node_count);
    if (!packed.ok()) {
      return packed.status().WithContext("packed sub-tree " + path);
    }
    ERA_ASSIGN_OR_RETURN(*tree, packed->Inflate());
    return Status::OK();
  }
  TreeBuffer linked;
  linked.mutable_nodes() = std::move(v1_nodes);
  ERA_ASSIGN_OR_RETURN(*tree, BuildCountedTree(linked));
  return Status::OK();
}

Status ReadServedSubTree(Env* env, const std::string& path,
                         ServedSubTree* tree, std::string* prefix_out,
                         IoStats* stats) {
  std::vector<TreeNode> v1_nodes;
  CountedTree counted;
  std::string v3_payload;
  uint64_t node_count = 0;
  uint32_t version = 0;
  ERA_RETURN_NOT_OK(ReadPayload(env, path, &v1_nodes,
                                &counted.mutable_nodes(), &v3_payload,
                                &node_count, &version, prefix_out, stats));
  if (version == kVersionPacked) {
    auto packed =
        CompressedSubTree::FromPayload(std::move(v3_payload), node_count);
    if (!packed.ok()) {
      return packed.status().WithContext("packed sub-tree " + path);
    }
    *tree = ServedSubTree(std::move(packed).value());
    return Status::OK();
  }
  if (version == kVersionLinked) {
    TreeBuffer linked;
    linked.mutable_nodes() = std::move(v1_nodes);
    ERA_ASSIGN_OR_RETURN(counted, BuildCountedTree(linked));
  } else if (Status s = ValidateCountedLayout(counted); !s.ok()) {
    return Status::Corruption(s.message() + " in " + path);
  }
  *tree = ServedSubTree(std::move(counted));
  return Status::OK();
}

StatusOr<SubTreeFileInfo> InspectSubTreeFile(Env* env,
                                             const std::string& path) {
  ERA_ASSIGN_OR_RETURN(auto file, env->OpenRandomAccess(path));
  Header header;
  std::size_t got = 0;
  ERA_RETURN_NOT_OK(file->Read(0, sizeof(header),
                               reinterpret_cast<char*>(&header), &got));
  if (got != sizeof(header) ||
      std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad sub-tree magic in " + path);
  }
  if (header.version != kVersionLinked && header.version != kVersionCounted &&
      header.version != kVersionPacked) {
    return Status::NotSupported("unsupported sub-tree version in " + path);
  }
  SubTreeFileInfo info;
  info.version = header.version;
  info.node_count = header.node_count;
  info.file_bytes = file->Size();
  if (sizeof(header) + header.prefix_len > info.file_bytes) {
    return Status::Corruption("truncated prefix in " + path);
  }
  info.prefix.resize(header.prefix_len);
  ERA_RETURN_NOT_OK(
      file->Read(sizeof(header), info.prefix.size(), info.prefix.data(),
                 &got));
  if (got != info.prefix.size()) {
    return Status::Corruption("truncated prefix in " + path);
  }
  info.payload_bytes = info.file_bytes - sizeof(header) - header.prefix_len;
  info.inflated_bytes = header.node_count * sizeof(CountedNode);
  info.serving_bytes = header.version == kVersionPacked
                           ? info.payload_bytes + kBitReaderPadBytes
                           : info.inflated_bytes;
  return info;
}

}  // namespace era
