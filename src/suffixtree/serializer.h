// Sub-tree persistence: a fixed header + CRC-protected raw node array.

#ifndef ERA_SUFFIXTREE_SERIALIZER_H_
#define ERA_SUFFIXTREE_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "suffixtree/tree_buffer.h"

namespace era {

/// Writes `tree` for S-prefix `prefix` to `path`. Billed to `stats` if given.
Status WriteSubTree(Env* env, const std::string& path,
                    const std::string& prefix, const TreeBuffer& tree,
                    IoStats* stats);

/// Reads a sub-tree back; verifies magic, version and CRC. `prefix_out` may
/// be nullptr.
Status ReadSubTree(Env* env, const std::string& path, TreeBuffer* tree,
                   std::string* prefix_out, IoStats* stats);

}  // namespace era

#endif  // ERA_SUFFIXTREE_SERIALIZER_H_
