// Sub-tree persistence: a fixed header + CRC-protected payload.
//
// Three on-disk versions share the header:
//   * v1 — the legacy linked TreeNode array (IEEE CRC-32). Still readable;
//     only WriteSubTreeV1 produces it (compat tooling and tests).
//   * v2 — the counted serving layout (CountedNode array, CRC-32C): nodes in
//     DFS order, contiguous child blocks sorted by first symbol, per-node
//     subtree leaf counts.
//   * v3 — the compressed serving layout (CRC-32C): bit-packed
//     width-minimal counted records plus a delta/varint leaf stream (see
//     suffixtree/compressed_tree.h). The default for all builders.
//
// Any version can be read into any in-memory form: ReadServedSubTree is the
// serving path (v3 stays compressed, v1/v2 inflate to CountedTree);
// ReadCountedSubTree and ReadSubTree convert as needed for consumers that
// operate on CountedNode / the linked form (validator, TRELLIS merge,
// legacy tests).

#ifndef ERA_SUFFIXTREE_SERIALIZER_H_
#define ERA_SUFFIXTREE_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "suffixtree/compressed_tree.h"
#include "suffixtree/node.h"
#include "suffixtree/tree_buffer.h"

namespace era {

/// Writes `tree` for S-prefix `prefix` to `path` (converting to the counted
/// layout, then encoding per `format`). The file is published atomically and
/// durably (temp + Sync + rename): a crash mid-write never leaves a readable
/// torn file at `path`. Billed to `stats` if given. `file_crc` (optional)
/// receives the CRC-32C of the complete file as written — the checksum the
/// build checkpoint records.
Status WriteSubTree(Env* env, const std::string& path,
                    const std::string& prefix, const TreeBuffer& tree,
                    IoStats* stats, uint32_t* file_crc = nullptr,
                    SubTreeFormat format = SubTreeFormat::kPacked);

/// Writes an already-counted tree to `path` (atomic + durable) in the given
/// format (v2 verbatim, or v3 bit-packed).
Status WriteCountedSubTree(Env* env, const std::string& path,
                           const std::string& prefix, const CountedTree& tree,
                           IoStats* stats, uint32_t* file_crc = nullptr,
                           SubTreeFormat format = SubTreeFormat::kPacked);

/// Writes `tree` in the legacy v1 format (linked TreeNode array). Kept for
/// round-trip tests and for generating compat fixtures; builders use
/// WriteSubTree.
Status WriteSubTreeV1(Env* env, const std::string& path,
                      const std::string& prefix, const TreeBuffer& tree,
                      IoStats* stats);

/// Reads a sub-tree (any version) into the linked form; verifies magic,
/// version and CRC. `prefix_out` may be nullptr.
Status ReadSubTree(Env* env, const std::string& path, TreeBuffer* tree,
                   std::string* prefix_out, IoStats* stats);

/// Reads a sub-tree (any version) into the counted form. v2 files are
/// structure-checked (child blocks in bounds and acyclic, leaf counts
/// consistent); v3 files are fully validated by the packed decoder before
/// inflation.
Status ReadCountedSubTree(Env* env, const std::string& path, CountedTree* tree,
                          std::string* prefix_out, IoStats* stats);

/// Reads a sub-tree (any version) into the serving form TreeIndex caches:
/// v3 files stay compressed (no CountedNode inflation — the cache charges
/// the packed size), v1/v2 files load as counted trees. All versions are
/// structure-validated before any query walks them.
Status ReadServedSubTree(Env* env, const std::string& path,
                         ServedSubTree* tree, std::string* prefix_out,
                         IoStats* stats);

/// Cheap per-file facts for `era_cli inspect` and the bench: header fields
/// plus the sizes needed to compute compression ratios. Reads the header and
/// prefix only (no payload decode beyond what Size() gives).
struct SubTreeFileInfo {
  uint32_t version = 0;
  uint64_t node_count = 0;
  std::string prefix;
  uint64_t file_bytes = 0;      // total on-disk size
  uint64_t payload_bytes = 0;   // file minus header and prefix
  uint64_t serving_bytes = 0;   // resident size when cached (v3: packed blob;
                                // v1/v2: node_count * 32)
  uint64_t inflated_bytes = 0;  // node_count * sizeof(CountedNode)
};

StatusOr<SubTreeFileInfo> InspectSubTreeFile(Env* env, const std::string& path);

}  // namespace era

#endif  // ERA_SUFFIXTREE_SERIALIZER_H_
