// Sub-tree persistence: a fixed header + CRC-protected raw node array.
//
// Two on-disk versions share the header:
//   * v1 — the legacy linked TreeNode array (IEEE CRC-32). Still readable;
//     only WriteSubTreeV1 produces it (compat tooling and tests).
//   * v2 — the counted serving layout (CountedNode array, CRC-32C): nodes in
//     DFS order, contiguous child blocks sorted by first symbol, per-node
//     subtree leaf counts. All builders emit v2 through WriteSubTree.
//
// Either version can be read into either in-memory form: ReadCountedSubTree
// converts v1 files on load (the serving path), ReadSubTree converts v2
// files back to the linked form (TRELLIS merge, legacy tests).

#ifndef ERA_SUFFIXTREE_SERIALIZER_H_
#define ERA_SUFFIXTREE_SERIALIZER_H_

#include <string>

#include "common/status.h"
#include "io/env.h"
#include "io/io_stats.h"
#include "suffixtree/tree_buffer.h"

namespace era {

/// Writes `tree` for S-prefix `prefix` to `path` in format v2 (converting to
/// the counted layout). The file is published atomically and durably
/// (temp + Sync + rename): a crash mid-write never leaves a readable torn
/// file at `path`. Billed to `stats` if given. `file_crc` (optional)
/// receives the CRC-32C of the complete file as written — the checksum the
/// build checkpoint records.
Status WriteSubTree(Env* env, const std::string& path,
                    const std::string& prefix, const TreeBuffer& tree,
                    IoStats* stats, uint32_t* file_crc = nullptr);

/// Writes an already-counted tree to `path` in format v2 (atomic + durable).
Status WriteCountedSubTree(Env* env, const std::string& path,
                           const std::string& prefix, const CountedTree& tree,
                           IoStats* stats, uint32_t* file_crc = nullptr);

/// Writes `tree` in the legacy v1 format (linked TreeNode array). Kept for
/// round-trip tests and for generating compat fixtures; builders use
/// WriteSubTree.
Status WriteSubTreeV1(Env* env, const std::string& path,
                      const std::string& prefix, const TreeBuffer& tree,
                      IoStats* stats);

/// Reads a sub-tree (either version) into the linked form; verifies magic,
/// version and CRC. `prefix_out` may be nullptr.
Status ReadSubTree(Env* env, const std::string& path, TreeBuffer* tree,
                   std::string* prefix_out, IoStats* stats);

/// Reads a sub-tree (either version) into the counted serving form. v2 files
/// are additionally structure-checked (child blocks in bounds and acyclic,
/// leaf counts consistent) so query traversals never chase corrupt offsets.
Status ReadCountedSubTree(Env* env, const std::string& path, CountedTree* tree,
                          std::string* prefix_out, IoStats* stats);

}  // namespace era

#endif  // ERA_SUFFIXTREE_SERIALIZER_H_
