#include "query/query_workload.h"

#include <algorithm>
#include <random>
#include <thread>

#include "common/metrics.h"
#include "common/timer.h"

namespace era {

std::vector<std::string> SamplePatternWorkload(
    const std::string& text, const QueryWorkloadOptions& options) {
  std::vector<std::string> patterns;
  if (text.size() < 2) return patterns;
  const std::size_t body = text.size() - 1;  // keep the terminal out of windows
  std::mt19937_64 rng(options.seed);
  const std::size_t max_len = std::min(options.max_len, body);
  const std::size_t min_len = std::min(std::max<std::size_t>(1, options.min_len),
                                       max_len);
  std::uniform_int_distribution<std::size_t> len_dist(min_len, max_len);
  patterns.reserve(options.num_patterns);
  for (std::size_t i = 0; i < options.num_patterns; ++i) {
    std::size_t len = len_dist(rng);
    std::uniform_int_distribution<std::size_t> pos_dist(0, body - len);
    std::string pattern = text.substr(pos_dist(rng), len);
    if (options.absent_fraction > 0 &&
        std::uniform_real_distribution<double>(0, 1)(rng) <
            options.absent_fraction) {
      // Flip the last symbol to another text symbol; most mutants miss.
      char replacement = text[pos_dist(rng)];
      if (replacement == pattern.back() && pattern.back() != 'x') {
        replacement = 'x';
      }
      pattern.back() = replacement;
    }
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

std::vector<std::string> SampleDictionaryWorkload(
    const std::string& text, const DictWorkloadOptions& options) {
  std::vector<std::string> patterns;
  if (text.size() < 2) return patterns;
  const std::size_t body = text.size() - 1;  // keep the terminal out of windows
  std::mt19937_64 rng(options.seed);
  const std::size_t max_len =
      std::min(options.max_len, body);
  const std::size_t min_len =
      std::min(std::max<std::size_t>(1, options.min_len), max_len);
  const std::size_t prefix_len =
      std::min(std::max<std::size_t>(1, options.prefix_len), max_len);

  // Anchor positions: each group's patterns are text substrings STARTING at
  // the group's anchor, so they all occur and all share the anchor's first
  // prefix_len symbols — a shared root-to-locus descent of at least that
  // depth.
  const std::size_t num_groups = std::max<std::size_t>(1, options.num_prefix_groups);
  std::vector<std::size_t> anchors(num_groups);
  std::uniform_int_distribution<std::size_t> anchor_dist(0, body - max_len);
  for (std::size_t& anchor : anchors) anchor = anchor_dist(rng);

  std::uniform_int_distribution<std::size_t> len_dist(min_len, max_len);
  std::uniform_int_distribution<std::size_t> group_dist(0, num_groups - 1);
  std::uniform_real_distribution<double> coin(0, 1);
  patterns.reserve(options.num_patterns);
  for (std::size_t i = 0; i < options.num_patterns; ++i) {
    const double roll = coin(rng);
    if (!patterns.empty() && roll < options.duplicate_fraction) {
      // Verbatim duplicate of an earlier pattern.
      std::uniform_int_distribution<std::size_t> pick(0, patterns.size() - 1);
      patterns.push_back(patterns[pick(rng)]);
      continue;
    }
    const std::size_t len = std::max(len_dist(rng), prefix_len);
    std::string pattern;
    if (roll < options.duplicate_fraction + options.straggler_fraction) {
      // Straggler: uniform position, no intentional prefix sharing.
      std::uniform_int_distribution<std::size_t> pos_dist(0, body - len);
      pattern = text.substr(pos_dist(rng), len);
    } else {
      pattern = text.substr(anchors[group_dist(rng)], len);
    }
    if (coin(rng) < options.mutant_fraction) {
      // Flip the last symbol to another text symbol; most mutants miss, so
      // the range descent exercises its peel-off paths.
      std::uniform_int_distribution<std::size_t> pos_dist(0, body - 1);
      char replacement = text[pos_dist(rng)];
      if (replacement == pattern.back() && pattern.back() != 'x') {
        replacement = 'x';
      }
      pattern.back() = replacement;
    }
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

StatusOr<ReplayResult> ReplayWorkload(QueryEngine* engine,
                                      const std::vector<std::string>& patterns,
                                      unsigned num_threads,
                                      const QueryWorkloadOptions& options) {
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (patterns.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  const std::size_t locate_every = std::max<std::size_t>(1, options.locate_every);

  struct ThreadOutcome {
    Status status = Status::OK();
    uint64_t checksum = 0;
    uint64_t counts = 0;
    uint64_t locates = 0;
  };
  std::vector<ThreadOutcome> outcomes(num_threads);

  // Per-query latencies go into one shared histogram on the global registry
  // (so a bench's --metrics-out export carries them); the replay's own
  // percentiles come from the snapshot delta below, which keeps repeated
  // replays in one process independent.
  std::shared_ptr<Histogram> latency =
      MetricsRegistry::Global()->GetHistogram(
          "era_replay_query_latency_seconds",
          "Per-query wall latency of workload replays");
  const HistogramSnapshot before = latency->snapshot();

  auto worker = [&](unsigned t) {
    ThreadOutcome& out = outcomes[t];
    for (std::size_t i = t; i < patterns.size(); i += num_threads) {
      WallTimer query_timer;
      if (i % locate_every == 0) {
        auto hits = engine->Locate(patterns[i], options.locate_limit);
        if (!hits.ok()) {
          out.status = hits.status();
          return;
        }
        for (uint64_t h : *hits) out.checksum += h + 1;
        ++out.locates;
      } else {
        auto count = engine->Count(patterns[i]);
        if (!count.ok()) {
          out.status = count.status();
          return;
        }
        out.checksum += *count;
        ++out.counts;
      }
      latency->Observe(query_timer.Seconds());
    }
  };

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();
  const double wall = timer.Seconds();

  ReplayResult result;
  result.wall_seconds = wall;
  for (const ThreadOutcome& out : outcomes) {
    ERA_RETURN_NOT_OK(out.status);
    result.occurrence_checksum += out.checksum;
    result.count_queries += out.counts;
    result.locate_queries += out.locates;
  }
  result.queries = result.count_queries + result.locate_queries;
  result.qps = wall > 0 ? static_cast<double>(result.queries) / wall : 0;

  HistogramSnapshot delta = latency->snapshot();
  for (std::size_t i = 0; i < delta.counts.size(); ++i) {
    delta.counts[i] -= before.counts[i];
  }
  delta.count -= before.count;
  delta.sum -= before.sum;
  if (delta.count > 0) {
    result.p50_ms = delta.Quantile(0.5) * 1000.0;
    result.p90_ms = delta.Quantile(0.9) * 1000.0;
    result.p99_ms = delta.Quantile(0.99) * 1000.0;
  }
  return result;
}

}  // namespace era
