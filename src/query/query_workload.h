// Pattern-workload generation and multi-threaded replay.
//
// Shared by bench/query_qps.cc and `era_cli bench-query`: sample a
// deterministic mixed workload from the indexed text, then replay it against
// one QueryEngine from N threads (each thread takes a strided slice, so every
// thread count issues the identical query set and the occurrence checksum
// must match across runs).

#ifndef ERA_QUERY_QUERY_WORKLOAD_H_
#define ERA_QUERY_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query_engine.h"

namespace era {

/// Workload shape knobs (all deterministic in `seed`).
struct QueryWorkloadOptions {
  std::size_t num_patterns = 2000;
  /// Pattern lengths are uniform in [min_len, max_len].
  std::size_t min_len = 4;
  std::size_t max_len = 24;
  /// Fraction of patterns mutated in their last symbol so most of them miss
  /// (exercises the mismatch paths).
  double absent_fraction = 0.1;
  /// Every `locate_every`-th query is a Locate; the rest are Counts.
  std::size_t locate_every = 4;
  /// Limit passed to the Locate queries.
  std::size_t locate_limit = 100;
  uint64_t seed = 42;
};

/// Samples substrings of `text` (the terminal byte is excluded from sampling
/// windows) per `options`. Deterministic.
std::vector<std::string> SamplePatternWorkload(
    const std::string& text, const QueryWorkloadOptions& options);

/// Shape knobs for a dictionary-matching workload (all deterministic in
/// `seed`). The mix exercises everything MatchDictionary amortizes: heavy
/// shared prefixes (patterns extending a small set of anchors, so groups
/// share long descents), exact duplicates (the dedup layer), last-symbol
/// mutants (mismatch peel-off inside shared edges), and uniform-random
/// stragglers (cross-sub-tree groups with little sharing).
struct DictWorkloadOptions {
  std::size_t num_patterns = 10000;
  /// Distinct anchor positions whose extensions form the shared-prefix bulk.
  std::size_t num_prefix_groups = 32;
  /// Length of the shared prefix each group's patterns have in common.
  std::size_t prefix_len = 8;
  /// Pattern lengths are uniform in [min_len, max_len] (>= prefix_len for
  /// group members).
  std::size_t min_len = 8;
  std::size_t max_len = 24;
  /// Fraction of patterns that verbatim-duplicate an earlier pattern.
  double duplicate_fraction = 0.2;
  /// Fraction mutated in their last symbol (mostly misses).
  double mutant_fraction = 0.1;
  /// Fraction sampled at uniform random positions (cross-sub-tree
  /// stragglers outside the prefix groups).
  double straggler_fraction = 0.05;
  uint64_t seed = 42;
};

/// Samples a dictionary workload from `text` per `options`. Deterministic;
/// the terminal byte is excluded from every sampling window. Benches and
/// tests draw from this one generator so they race identical dictionaries.
std::vector<std::string> SampleDictionaryWorkload(
    const std::string& text, const DictWorkloadOptions& options);

/// Outcome of one replay.
struct ReplayResult {
  uint64_t queries = 0;
  uint64_t count_queries = 0;
  uint64_t locate_queries = 0;
  double wall_seconds = 0;
  double qps = 0;
  /// Sum of Count results plus located offsets modulo 2^64 — a checksum that
  /// must be identical for every thread count over the same workload.
  uint64_t occurrence_checksum = 0;
  /// Per-query latency percentiles (milliseconds), estimated from the shared
  /// era_replay_query_latency_seconds histogram on the global registry —
  /// this replay's observations only (snapshot delta), not process lifetime.
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
};

/// Replays `patterns` against `engine` from `num_threads` threads. Thread t
/// issues patterns t, t+T, t+2T, ... so the union is exactly the workload.
/// Returns the first error any thread hit, if any.
StatusOr<ReplayResult> ReplayWorkload(QueryEngine* engine,
                                      const std::vector<std::string>& patterns,
                                      unsigned num_threads,
                                      const QueryWorkloadOptions& options);

}  // namespace era

#endif  // ERA_QUERY_QUERY_WORKLOAD_H_
