// Admission control for the serving path: bounded concurrency, bounded
// queueing, immediate shedding beyond that.
//
// The failure mode this prevents is queueing collapse. An open-loop arrival
// stream offered above capacity grows an unbounded backlog; every request
// eventually waits longer than any useful deadline, so the system does
// maximal work for zero goodput. The controller instead holds a hard cap of
// in-flight queries (matched to what the device layer can actually run
// concurrently), a small bounded FIFO wait queue to absorb bursts, and sheds
// everything beyond that *immediately* with ResourceExhausted — a refused
// request costs microseconds and tells the client to back off or go to
// another replica, which is strictly better than an accepted request that
// times out after consuming device bandwidth.
//
// Fairness: the wait queue is per-client FIFO, served round-robin across
// client ids (QueryContext::client_id), so one flooding client lengthens its
// own queue, not everyone's. Waiters whose deadline passes while queued are
// evicted at grant time (queue-deadline eviction) — a slot is never handed
// to a request that can no longer use it.
//
// Drain: the graceful-shutdown primitive the future network front end calls.
// Drain() immediately sheds all waiters and rejects new arrivals with
// ResourceExhausted while letting in-flight queries finish; WaitIdle()
// blocks until they have.

#ifndef ERA_QUERY_ADMISSION_H_
#define ERA_QUERY_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/status.h"

namespace era {

/// Tuning knobs for one AdmissionController.
struct AdmissionOptions {
  /// Master switch. Disabled (the default) admits everything instantly —
  /// existing callers see no behavior change — but in-flight tracking and
  /// Drain() still work, so a drained engine rejects new work either way.
  bool enabled = false;
  /// Hard cap on concurrently executing queries. Match this to the device's
  /// useful parallelism (e.g. its queue depth): slots beyond that only add
  /// queueing *inside* the device where no policy can see it.
  uint32_t max_in_flight = 8;
  /// Total waiters across all clients before new arrivals are shed. Sized
  /// to absorb bursts, not sustained overload: each queued request will
  /// wait roughly (position / max_in_flight) service times, so a queue much
  /// deeper than deadline/service_time is pre-declared goodput zero.
  uint32_t max_queue = 64;
  /// Per-client waiter cap (0 = no per-client cap beyond max_queue). With
  /// round-robin grant order a flooder already cannot starve others; this
  /// additionally stops it from consuming the whole burst buffer.
  uint32_t max_queue_per_client = 0;
  /// How often a queued waiter re-checks its cancellation token while
  /// blocked (deadline expiry needs no polling — waits are clamped to the
  /// deadline).
  double queue_poll_seconds = 0.005;
  /// Registry the serving counters and the queue-wait histogram register
  /// into (as era_serving_* with `metric_labels`). Null keeps the
  /// instruments standalone: identical behavior and identical stats(), just
  /// invisible to the exporters.
  MetricsRegistry* registry = nullptr;
  /// Labels distinguishing this controller's series (e.g. {{"engine","0"}}).
  MetricLabels metric_labels;
};

/// Snapshot of the serving-layer counters, surfaced beside QueryStats. The
/// numbers live in shared metrics instruments (common/metrics.h) inside the
/// controller; this struct is the thin view read via
/// AdmissionController::stats(), kept so existing callers break not at all.
struct ServingStats {
  /// Requests granted a slot (immediately or after queueing).
  uint64_t admitted = 0;
  /// Admitted requests that waited in the queue first.
  uint64_t queued = 0;
  /// Requests refused with ResourceExhausted (queue full, per-client cap,
  /// or draining).
  uint64_t shed = 0;
  /// Requests whose deadline expired before or while queued, plus expired
  /// outcomes reported by RecordOutcome for mid-flight expiry.
  uint64_t deadline_exceeded = 0;
  /// Requests cancelled before or while queued, plus cancelled outcomes
  /// reported by RecordOutcome.
  uint64_t cancelled = 0;
  /// Waiters evicted at grant time because their deadline passed in the
  /// queue (also counted in deadline_exceeded).
  uint64_t deadline_evicted = 0;

  /// Queue-wait histogram: bucket upper bounds 0.25ms, 1ms, 4ms, 16ms,
  /// 64ms, 256ms, 1s, +inf (upper-inclusive). Only requests that actually
  /// queued are billed. Backed by the shared Histogram type; this fixed
  /// array is the snapshot view.
  static constexpr uint32_t kWaitBuckets = 8;
  uint64_t queue_wait_buckets[kWaitBuckets] = {};
  /// Upper bound of bucket `i` in seconds (+inf for the last). Exposed for
  /// printing.
  static double WaitBucketBound(uint32_t i);
  /// The same bounds as a vector — the layout of the shared queue-wait
  /// Histogram (admission_test pins that the two agree).
  static std::vector<double> WaitBucketBounds();

  void Add(const ServingStats& other);
};

class AdmissionController;

/// RAII in-flight slot. Move-only; releasing (destruction or Release())
/// frees the slot and wakes the next eligible waiter. An empty Permit (from
/// a failed Admit) releases nothing.
class Permit {
 public:
  Permit() = default;
  Permit(Permit&& other) noexcept : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  Permit& operator=(Permit&& other) noexcept;
  Permit(const Permit&) = delete;
  Permit& operator=(const Permit&) = delete;
  ~Permit() { Release(); }

  bool valid() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  explicit Permit(AdmissionController* controller) : controller_(controller) {}
  AdmissionController* controller_ = nullptr;
};

/// Thread-safe admission controller; one per QueryEngine.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Tries to admit one request (or one batch — a batch admits once and
  /// holds its permit across all items). On OK, `*permit` holds the slot.
  /// Failure modes, checked in order:
  ///   * draining, queue full, or per-client cap hit → ResourceExhausted
  ///     (shed; returns without blocking),
  ///   * context cancelled → Cancelled,
  ///   * deadline already passed or passes while queued → DeadlineExceeded.
  /// Otherwise blocks in the fair queue until a slot frees up.
  Status Admit(const QueryContext& ctx, Permit* permit);

  /// Reports the outcome of an admitted query so mid-flight deadline
  /// expiry/cancellation (which Admit cannot see) lands in ServingStats.
  /// Call after the query finishes, before releasing its permit or after —
  /// the controller only inspects the code.
  void RecordOutcome(const Status& status);

  /// Enters drain mode: all queued waiters are shed now, new Admit calls
  /// are refused with ResourceExhausted, in-flight queries run to
  /// completion. Idempotent.
  void Drain();
  /// Leaves drain mode; new work is admitted again.
  void Resume();
  bool draining() const;

  /// Blocks until no query is in flight (use after Drain() for graceful
  /// shutdown).
  void WaitIdle();

  uint32_t in_flight() const;
  ServingStats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  friend class Permit;

  /// How a queued waiter was woken. kEvicted covers both grant-time
  /// deadline eviction and grant-time cancellation (the waiter consults its
  /// own context for which); stat billing happens on the side that sets the
  /// state, never twice.
  enum class Wake { kWaiting, kGranted, kShed, kEvicted };

  struct Waiter {
    const QueryContext* ctx = nullptr;
    QueryContext::Clock::time_point enqueued_at;
    Wake wake = Wake::kWaiting;
    std::condition_variable cv;
  };

  /// Hands the freed slot to the next eligible waiter, round-robin across
  /// clients, evicting waiters whose deadline passed in the queue. Caller
  /// holds mu_.
  void GrantLocked(QueryContext::Clock::time_point now);
  /// Removes `waiter` (owned by a stack frame in Admit) from its client's
  /// queue. Caller holds mu_.
  void RemoveWaiterLocked(uint64_t client_id, Waiter* waiter);
  void ReleaseSlot();

  const AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  uint32_t in_flight_ = 0;
  uint32_t total_waiters_ = 0;
  bool draining_ = false;
  /// Per-client FIFO of borrowed waiter frames (each lives on its Admit
  /// caller's stack until granted, shed, or abandoned).
  std::unordered_map<uint64_t, std::deque<Waiter*>> queues_;
  /// Round-robin order of client ids with live waiters.
  std::deque<uint64_t> rr_;

  /// Serving counters as shared instruments (registered as era_serving_*
  /// when options_.registry is set, standalone otherwise). stats() reads
  /// them back into the ServingStats view.
  std::shared_ptr<Counter> admitted_;
  std::shared_ptr<Counter> queued_;
  std::shared_ptr<Counter> shed_;
  std::shared_ptr<Counter> deadline_exceeded_;
  std::shared_ptr<Counter> cancelled_;
  std::shared_ptr<Counter> deadline_evicted_;
  std::shared_ptr<Histogram> queue_wait_;
};

}  // namespace era

#endif  // ERA_QUERY_ADMISSION_H_
