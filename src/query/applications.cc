#include "query/applications.h"

#include <algorithm>

#include "query/query_engine.h"

namespace era {

namespace {

/// Iterative DFS over one sub-tree invoking `visit(node, depth)` for every
/// internal node with >= 2 children (true branching points). Walks the
/// serving form through the NodeView cursor, so compressed (v3) trees are
/// traversed without inflating.
template <typename Visit>
void VisitBranchingNodes(const ServedSubTree& tree, Visit&& visit) {
  struct Frame {
    uint32_t node;
    uint64_t depth;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const NodeView n = tree.node(f.node);
    if (n.IsLeaf()) continue;
    for (uint32_t i = 0; i < n.num_children; ++i) {
      uint32_t c = n.children_begin + i;
      stack.push_back({c, f.depth + tree.node(c).edge_len});
    }
    if (n.num_children >= 2) visit(f.node, f.depth);
  }
}

/// First leaf position under `node` (cheap existence witness).
uint64_t FirstLeafUnder(const ServedSubTree& tree, uint32_t node) {
  uint32_t u = node;
  NodeView v = tree.node(u);
  while (!v.IsLeaf()) {
    u = v.children_begin;
    v = tree.node(u);
  }
  return tree.LeafIdOf(v);
}

}  // namespace

StatusOr<Substring> LongestRepeatedSubstring(Env* env, const TreeIndex& index,
                                             const std::string& text) {
  Substring best;
  for (uint32_t id = 0; id < index.subtrees().size(); ++id) {
    ERA_ASSIGN_OR_RETURN(auto tree, index.OpenSubTree(env, id, nullptr));
    VisitBranchingNodes(*tree, [&](uint32_t node, uint64_t depth) {
      if (depth > best.length) {
        best.length = depth;
        best.offset = FirstLeafUnder(*tree, node);
      }
    });
  }
  // Branching points shared between sub-trees live on trie paths; a trie
  // node with >= 2 suffixes below it witnesses a repeat of its path length.
  // Trie paths are the (short) partition prefixes, so this only matters for
  // texts whose repeats are shorter than the prefixes.
  struct TrieFrame {
    uint32_t node;
    uint64_t depth;
  };
  std::vector<TrieFrame> stack{{0, 0}};
  while (!stack.empty()) {
    TrieFrame f = stack.back();
    stack.pop_back();
    const PrefixTrie::Node& n = index.trie().node(f.node);
    if (f.depth > best.length && index.trie().TotalFrequency(f.node) >= 2) {
      // Witness: any suffix below shares this path.
      std::vector<PrefixTrie::Entry> entries;
      index.trie().CollectEntries(f.node, &entries);
      uint64_t offset = 0;
      if (entries[0].subtree_id >= 0) {
        ERA_ASSIGN_OR_RETURN(
            auto tree,
            index.OpenSubTree(
                env, static_cast<uint32_t>(entries[0].subtree_id), nullptr));
        offset = FirstLeafUnder(*tree, 0);
      } else {
        offset = entries[0].leaf_position;
      }
      best.length = f.depth;
      best.offset = offset;
    }
    for (const auto& [sym, child] : n.children) {
      (void)sym;
      stack.push_back({child, f.depth + 1});
    }
  }
  (void)text;
  return best;
}

StatusOr<Motif> MostFrequentKmer(Env* env, const TreeIndex& index,
                                 const std::string& text, uint64_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  Motif best;

  // Count leaves under the shallowest node at depth >= k in each sub-tree:
  // that node's leaf count is the frequency of its k-symbol path prefix.
  for (uint32_t id = 0; id < index.subtrees().size(); ++id) {
    ERA_ASSIGN_OR_RETURN(auto tree, index.OpenSubTree(env, id, nullptr));
    struct Frame {
      uint32_t node;
      uint64_t depth;
    };
    std::vector<Frame> stack{{0, 0}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      const NodeView n = tree->node(f.node);
      if (f.depth >= k) {
        // All leaves below share the first k symbols.
        std::vector<uint64_t> leaves;
        ERA_RETURN_NOT_OK(
            tree->CollectLeaves(f.node, nullptr, SIZE_MAX, &leaves));
        // Exclude windows that would run past the text body (terminal), and
        // witness the motif with an occurrence that lies fully inside it.
        uint64_t offset = leaves.front();
        uint64_t count = 0;
        for (uint64_t pos : leaves) {
          if (pos + k < text.size()) {  // strictly inside the body
            if (count == 0) offset = pos;
            ++count;
          }
        }
        if (count > best.count) {
          best.count = count;
          best.offset = offset;
        }
        continue;
      }
      for (uint32_t i = 0; i < n.num_children; ++i) {
        uint32_t c = n.children_begin + i;
        stack.push_back({c, f.depth + tree->node(c).edge_len});
      }
    }
  }
  return best;
}

StatusOr<GeneralizedCollection> ConcatenateDocuments(
    const std::vector<std::string>& documents, char separator) {
  std::vector<CollectionDocument> named;
  named.reserve(documents.size());
  for (std::size_t d = 0; d < documents.size(); ++d) {
    named.push_back({"doc" + std::to_string(d), documents[d]});
  }
  return ConcatenateCollection(named, separator);
}

StatusOr<Substring> LongestCommonSubstring(Env* env, const TreeIndex& index,
                                           const DocumentMap& documents,
                                           uint32_t doc_a, uint32_t doc_b) {
  if (doc_a >= documents.num_documents() ||
      doc_b >= documents.num_documents()) {
    return Status::InvalidArgument("document id out of range");
  }

  Substring best;
  for (uint32_t id = 0; id < index.subtrees().size(); ++id) {
    ERA_ASSIGN_OR_RETURN(auto tree, index.OpenSubTree(env, id, nullptr));
    Status collect = Status::OK();
    VisitBranchingNodes(*tree, [&](uint32_t node, uint64_t depth) {
      if (!collect.ok() || depth <= best.length) return;
      std::vector<uint64_t> leaves;
      collect = tree->CollectLeaves(node, nullptr, SIZE_MAX, &leaves);
      if (!collect.ok()) return;
      bool has_a = false;
      bool has_b = false;
      uint64_t witness = 0;
      bool have_witness = false;
      for (uint64_t pos : leaves) {
        DocLocation loc;
        // A suffix starting on a separator/terminal byte belongs to no
        // document; a suffix whose first `depth` symbols leave its document
        // cannot witness a common substring of that length.
        if (!documents.ResolveSpan(pos, depth, &loc)) continue;
        if (!have_witness) {
          witness = pos;
          have_witness = true;
        }
        has_a |= (loc.doc_id == doc_a);
        has_b |= (loc.doc_id == doc_b);
      }
      if (!has_a || !has_b) return;
      best.length = depth;
      best.offset = witness;
    });
    ERA_RETURN_NOT_OK(collect);
  }
  return best;
}

}  // namespace era
