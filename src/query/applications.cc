#include "query/applications.h"

#include <algorithm>

#include "query/query_engine.h"

namespace era {

namespace {

/// Iterative DFS over one sub-tree invoking `visit(node, depth)` for every
/// internal node with >= 2 children (true branching points).
template <typename Visit>
void VisitBranchingNodes(const CountedTree& tree, Visit&& visit) {
  struct Frame {
    uint32_t node;
    uint64_t depth;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const CountedNode& n = tree.node(f.node);
    if (n.IsLeaf()) continue;
    for (uint32_t i = 0; i < n.num_children; ++i) {
      uint32_t c = n.children_begin + i;
      stack.push_back({c, f.depth + tree.node(c).edge_len});
    }
    if (n.num_children >= 2) visit(f.node, f.depth);
  }
}

/// First leaf position under `node` (cheap existence witness).
uint64_t FirstLeafUnder(const CountedTree& tree, uint32_t node) {
  uint32_t u = node;
  while (!tree.node(u).IsLeaf()) u = tree.node(u).children_begin;
  return tree.node(u).leaf_id();
}

}  // namespace

StatusOr<Substring> LongestRepeatedSubstring(Env* env, const TreeIndex& index,
                                             const std::string& text) {
  Substring best;
  for (uint32_t id = 0; id < index.subtrees().size(); ++id) {
    ERA_ASSIGN_OR_RETURN(auto tree, index.OpenSubTree(env, id, nullptr));
    VisitBranchingNodes(*tree, [&](uint32_t node, uint64_t depth) {
      if (depth > best.length) {
        best.length = depth;
        best.offset = FirstLeafUnder(*tree, node);
      }
    });
  }
  // Branching points shared between sub-trees live on trie paths; a trie
  // node with >= 2 suffixes below it witnesses a repeat of its path length.
  // Trie paths are the (short) partition prefixes, so this only matters for
  // texts whose repeats are shorter than the prefixes.
  struct TrieFrame {
    uint32_t node;
    uint64_t depth;
  };
  std::vector<TrieFrame> stack{{0, 0}};
  while (!stack.empty()) {
    TrieFrame f = stack.back();
    stack.pop_back();
    const PrefixTrie::Node& n = index.trie().node(f.node);
    if (f.depth > best.length && index.trie().TotalFrequency(f.node) >= 2) {
      // Witness: any suffix below shares this path.
      std::vector<PrefixTrie::Entry> entries;
      index.trie().CollectEntries(f.node, &entries);
      uint64_t offset = 0;
      if (entries[0].subtree_id >= 0) {
        ERA_ASSIGN_OR_RETURN(
            auto tree,
            index.OpenSubTree(
                env, static_cast<uint32_t>(entries[0].subtree_id), nullptr));
        offset = FirstLeafUnder(*tree, 0);
      } else {
        offset = entries[0].leaf_position;
      }
      best.length = f.depth;
      best.offset = offset;
    }
    for (const auto& [sym, child] : n.children) {
      (void)sym;
      stack.push_back({child, f.depth + 1});
    }
  }
  (void)text;
  return best;
}

StatusOr<Motif> MostFrequentKmer(Env* env, const TreeIndex& index,
                                 const std::string& text, uint64_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  Motif best;

  // Count leaves under the shallowest node at depth >= k in each sub-tree:
  // that node's leaf count is the frequency of its k-symbol path prefix.
  for (uint32_t id = 0; id < index.subtrees().size(); ++id) {
    ERA_ASSIGN_OR_RETURN(auto tree, index.OpenSubTree(env, id, nullptr));
    struct Frame {
      uint32_t node;
      uint64_t depth;
    };
    std::vector<Frame> stack{{0, 0}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      const CountedNode& n = tree->node(f.node);
      if (f.depth >= k) {
        // All leaves below share the first k symbols.
        std::vector<uint64_t> leaves;
        CollectLeaves(*tree, f.node, &leaves);
        // Exclude windows that would run past the text body (terminal), and
        // witness the motif with an occurrence that lies fully inside it.
        uint64_t offset = leaves.front();
        uint64_t count = 0;
        for (uint64_t pos : leaves) {
          if (pos + k < text.size()) {  // strictly inside the body
            if (count == 0) offset = pos;
            ++count;
          }
        }
        if (count > best.count) {
          best.count = count;
          best.offset = offset;
        }
        continue;
      }
      for (uint32_t i = 0; i < n.num_children; ++i) {
        uint32_t c = n.children_begin + i;
        stack.push_back({c, f.depth + tree->node(c).edge_len});
      }
    }
  }
  return best;
}

StatusOr<GeneralizedText> ConcatenateDocuments(
    const std::vector<std::string>& documents, char separator) {
  if (documents.empty()) {
    return Status::InvalidArgument("no documents");
  }
  GeneralizedText out;
  for (std::size_t d = 0; d < documents.size(); ++d) {
    out.doc_starts.push_back(out.text.size());
    out.text += documents[d];
    if (d + 1 < documents.size()) out.text.push_back(separator);
  }
  out.text.push_back(kTerminal);
  return out;
}

StatusOr<Substring> LongestCommonSubstring(Env* env, const TreeIndex& index,
                                           const std::string& text,
                                           const std::vector<uint64_t>& starts,
                                           std::size_t doc_a, std::size_t doc_b,
                                           char separator) {
  if (doc_a >= starts.size() || doc_b >= starts.size()) {
    return Status::InvalidArgument("document id out of range");
  }
  auto doc_of = [&](uint64_t pos) {
    auto it = std::upper_bound(starts.begin(), starts.end(), pos);
    return static_cast<std::size_t>(it - starts.begin()) - 1;
  };

  Substring best;
  for (uint32_t id = 0; id < index.subtrees().size(); ++id) {
    ERA_ASSIGN_OR_RETURN(auto tree, index.OpenSubTree(env, id, nullptr));
    VisitBranchingNodes(*tree, [&](uint32_t node, uint64_t depth) {
      if (depth <= best.length) return;
      std::vector<uint64_t> leaves;
      CollectLeaves(*tree, node, &leaves);
      bool has_a = false;
      bool has_b = false;
      for (uint64_t pos : leaves) {
        std::size_t d = doc_of(pos);
        has_a |= (d == doc_a);
        has_b |= (d == doc_b);
      }
      if (!has_a || !has_b) return;
      // The path must not cross a document boundary.
      uint64_t offset = leaves.front();
      bool crosses = false;
      for (uint64_t i = 0; i < depth; ++i) {
        if (text[offset + i] == separator) {
          crosses = true;
          break;
        }
      }
      if (crosses) return;
      best.length = depth;
      best.offset = offset;
    });
  }
  return best;
}

}  // namespace era
