#include "query/query_engine.h"

#include <algorithm>

namespace era {

void CollectLeaves(const TreeBuffer& tree, uint32_t node,
                   std::vector<uint64_t>* leaves, std::size_t limit) {
  std::vector<uint32_t> stack{node};
  while (!stack.empty() && leaves->size() < limit) {
    uint32_t u = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(u);
    if (n.IsLeaf()) leaves->push_back(n.leaf_id);
    // Push children in reverse sibling order to emit lexicographically.
    std::vector<uint32_t> children;
    for (uint32_t c = n.first_child; c != kNilNode;
         c = tree.node(c).next_sibling) {
      children.push_back(c);
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    Env* env, const std::string& index_dir) {
  ERA_ASSIGN_OR_RETURN(TreeIndex index, TreeIndex::Load(env, index_dir));
  std::unique_ptr<QueryEngine> engine(
      new QueryEngine(env, std::move(index)));
  StringReaderOptions reader_options;
  reader_options.buffer_bytes = 64 << 10;
  ERA_ASSIGN_OR_RETURN(
      engine->text_reader_,
      OpenStringReader(env, engine->index_.text().path, reader_options,
                       &engine->io_));
  return engine;
}

StatusOr<QueryEngine::SubTreeMatch> QueryEngine::MatchInSubTree(
    const TreeBuffer& tree, const std::string& pattern) {
  SubTreeMatch result;
  uint32_t node = 0;
  std::size_t matched = 0;
  char buf[256];
  while (matched < pattern.size()) {
    // Find the child whose edge starts with pattern[matched].
    uint32_t child = tree.node(node).first_child;
    bool advanced = false;
    for (; child != kNilNode; child = tree.node(child).next_sibling) {
      const TreeNode& c = tree.node(child);
      uint32_t got = 0;
      ERA_RETURN_NOT_OK(text_reader_->RandomFetch(c.edge_start, 1, buf, &got));
      if (got != 1) return Status::Corruption("edge label out of text");
      if (buf[0] != pattern[matched]) continue;
      // Walk the label.
      uint32_t j = 0;
      while (j < c.edge_len && matched + j < pattern.size()) {
        uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
            sizeof(buf), std::min<uint64_t>(c.edge_len - j,
                                            pattern.size() - matched - j)));
        ERA_RETURN_NOT_OK(
            text_reader_->RandomFetch(c.edge_start + j, chunk, buf, &got));
        if (got != chunk) return Status::Corruption("edge label truncated");
        for (uint32_t i = 0; i < chunk; ++i) {
          if (buf[i] != pattern[matched + j + i]) {
            return result;  // mismatch inside the edge: no occurrences
          }
        }
        j += chunk;
      }
      matched += j;
      node = child;
      advanced = true;
      break;
    }
    if (!advanced) return result;  // no child continues the pattern
  }
  result.matched = true;
  result.node = node;
  return result;
}

StatusOr<std::vector<uint64_t>> QueryEngine::Locate(const std::string& pattern,
                                                    std::size_t limit) {
  std::vector<uint64_t> hits;
  if (pattern.empty()) {
    return Status::InvalidArgument("empty pattern");
  }

  PrefixTrie::DescendResult walk = index_.trie().Descend(pattern);
  if (walk.pattern_exhausted) {
    // Every suffix below this trie node starts with the pattern.
    std::vector<PrefixTrie::Entry> entries;
    index_.trie().CollectEntries(walk.node, &entries);
    for (const auto& entry : entries) {
      if (hits.size() >= limit) break;
      if (entry.subtree_id >= 0) {
        ERA_ASSIGN_OR_RETURN(
            auto tree,
            index_.OpenSubTree(env_, static_cast<uint32_t>(entry.subtree_id),
                               &io_));
        CollectLeaves(*tree, 0, &hits, limit);
      } else {
        hits.push_back(entry.leaf_position);
      }
    }
  } else {
    const PrefixTrie::Node& node = index_.trie().node(walk.node);
    if (node.subtree_id < 0) {
      return hits;  // fell off the trie: no occurrences
    }
    ERA_ASSIGN_OR_RETURN(
        auto tree, index_.OpenSubTree(
                       env_, static_cast<uint32_t>(node.subtree_id), &io_));
    // Sub-tree labels carry the full path from the global root, so match
    // the whole pattern inside the sub-tree.
    ERA_ASSIGN_OR_RETURN(SubTreeMatch match, MatchInSubTree(*tree, pattern));
    if (match.matched) CollectLeaves(*tree, match.node, &hits, limit);
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

StatusOr<uint64_t> QueryEngine::Count(const std::string& pattern) {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");

  PrefixTrie::DescendResult walk = index_.trie().Descend(pattern);
  if (walk.pattern_exhausted) {
    // Frequencies are precomputed in the trie: no sub-tree I/O needed.
    return index_.trie().TotalFrequency(walk.node);
  }
  ERA_ASSIGN_OR_RETURN(auto hits, Locate(pattern));
  return static_cast<uint64_t>(hits.size());
}

StatusOr<bool> QueryEngine::Contains(const std::string& pattern) {
  ERA_ASSIGN_OR_RETURN(auto hits, Locate(pattern, 1));
  return !hits.empty();
}

}  // namespace era
