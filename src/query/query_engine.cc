#include "query/query_engine.h"

#include <algorithm>
#include <string_view>

namespace era {

const std::vector<QueryStatsField>& QueryStatsFields() {
  static const std::vector<QueryStatsField>* fields =
      new std::vector<QueryStatsField>{
          {"era_query_queries_total", "Completed Count/Locate/Contains calls",
           &QueryStats::queries},
          {"era_query_trie_resolved_counts_total",
           "Counts answered from the trie alone (no sub-tree open)",
           &QueryStats::trie_resolved_counts},
          {"era_query_nodes_visited_total",
           "Sub-tree nodes examined while matching",
           &QueryStats::nodes_visited},
          {"era_query_leaves_enumerated_total",
           "Leaf records materialized (Locate only)",
           &QueryStats::leaves_enumerated},
          {"era_query_unavailable_queries_total",
           "Queries answered Unavailable (sub-tree could not be loaded)",
           &QueryStats::unavailable_queries},
          {"era_query_batch_duplicates_folded_total",
           "Batch items answered by copying an identical earlier item",
           &QueryStats::batch_duplicates_folded},
          {"era_dict_groups_formed_total",
           "Same-sub-tree pattern groups formed by MatchDictionary",
           &QueryStats::dict_groups_formed},
          {"era_dict_descents_shared_total",
           "Tree edges walked once for a whole pattern range",
           &QueryStats::dict_descents_shared},
          {"era_dict_descents_saved_total",
           "Edge walks avoided versus the per-pattern loop",
           &QueryStats::dict_descents_saved},
      };
  return *fields;
}

void CollectLeaves(const TreeBuffer& tree, uint32_t node,
                   std::vector<uint64_t>* leaves, std::size_t limit) {
  std::vector<uint32_t> stack{node};
  while (!stack.empty() && leaves->size() < limit) {
    uint32_t u = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(u);
    if (n.IsLeaf()) leaves->push_back(n.leaf_id);
    // Push the children, then reverse the just-pushed segment in place so
    // the first child is popped next (lexicographic emission) without a
    // per-node scratch allocation.
    std::size_t first = stack.size();
    for (uint32_t c = n.first_child; c != kNilNode;
         c = tree.node(c).next_sibling) {
      stack.push_back(c);
    }
    std::reverse(stack.begin() + first, stack.end());
  }
}

void CollectLeaves(const CountedTree& tree, uint32_t node,
                   std::vector<uint64_t>* leaves) {
  // Background() never expires, so the context-aware scan cannot fail.
  Status s = CollectLeaves(tree, node, QueryContext::Background(), leaves);
  (void)s;
}

Status CollectLeaves(const CountedTree& tree, uint32_t node,
                     const QueryContext& ctx, std::vector<uint64_t>* leaves) {
  const CountedNode& n = tree.node(node);
  if (n.IsLeaf()) {
    leaves->push_back(n.leaf_id());
    return Status::OK();
  }
  // The strict descendants of `node` occupy one contiguous slot range
  // starting at children_begin (enforced at load; see serializer.cc), so
  // every leaf below sits in that range and the scan stops once the
  // subtree's leaf count is met. The context is re-checked every block of
  // slots: fine enough that a deadline abandon costs microseconds, coarse
  // enough that the clock read vanishes against the scan.
  constexpr uint32_t kCheckEverySlots = 4096;
  uint64_t remaining = n.leaf_or_count;
  leaves->reserve(leaves->size() + remaining);
  for (uint32_t i = n.children_begin; remaining > 0 && i < tree.size(); ++i) {
    if ((i - n.children_begin) % kCheckEverySlots == 0) {
      ERA_RETURN_NOT_OK(ctx.Check());
    }
    const CountedNode& c = tree.node(i);
    if (c.IsLeaf()) {
      leaves->push_back(c.leaf_id());
      --remaining;
    }
  }
  return Status::OK();
}

namespace {

/// Process-wide engine numbering for the {engine="N"} instance label: a
/// fresh engine always gets fresh series, so its counters start at zero no
/// matter how many engines this process opened before.
uint64_t NextEngineInstance() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    Env* env, const std::string& index_dir, const QueryEngineOptions& options) {
  ERA_ASSIGN_OR_RETURN(TreeIndex index, TreeIndex::Load(env, index_dir));
  index.ConfigureCache(options.cache);
  QueryEngineOptions engine_options = options;
  if (engine_options.metrics_enabled) {
    // The admission controller registers its era_serving_* series under the
    // same instance label as the engine's own counters.
    if (engine_options.registry == nullptr) {
      engine_options.registry = MetricsRegistry::Global();
    }
    engine_options.admission.registry = engine_options.registry;
    engine_options.admission.metric_labels = {
        {"engine", std::to_string(NextEngineInstance())}};
  }
  std::unique_ptr<QueryEngine> engine(
      new QueryEngine(env, std::move(index), engine_options));
  engine->InitObservability();
  // Open (and immediately pool) one session so a missing text file fails at
  // Open rather than on the first query.
  ERA_ASSIGN_OR_RETURN(auto session, engine->AcquireSession());
  engine->ReleaseSession(std::move(session));
  return engine;
}

QueryEngine::~QueryEngine() {
  if (metrics_ != nullptr && metrics_->collector_id != 0) {
    metrics_->registry->RemoveCollector(metrics_->collector_id);
  }
}

void QueryEngine::InitObservability() {
  if (options_.trace.enabled) {
    tracer_ = std::make_unique<TraceRecorder>(options_.trace.recorder);
  }
  if (!options_.metrics_enabled) return;
  metrics_ = std::make_unique<RegistryHooks>();
  metrics_->registry = options_.registry;
  const MetricLabels& labels = options_.admission.metric_labels;
  for (const IoStatsField& field : IoStatsFields()) {
    metrics_->io.push_back(
        metrics_->registry->GetCounter(field.name, field.help, labels));
  }
  for (const QueryStatsField& field : QueryStatsFields()) {
    metrics_->query.push_back(
        metrics_->registry->GetCounter(field.name, field.help, labels));
  }
  // Snapshot-style sources (sharded cache counters, the quarantine map,
  // in-flight, trace rings) contribute through a collector instead of
  // double-booking into counters.
  metrics_->collector_id = metrics_->registry->AddCollector(
      [this, labels](std::vector<MetricSample>* samples) {
        auto add = [&](const char* name, const char* help, MetricKind kind,
                       double value) {
          MetricSample sample;
          sample.name = name;
          sample.help = help;
          sample.kind = kind;
          sample.labels = labels;
          sample.value = value;
          samples->push_back(std::move(sample));
        };
        const TreeIndex::CacheSnapshot cache = index_.CacheStats();
        add("era_cache_hits_total", "Sub-tree cache hits",
            MetricKind::kCounter, static_cast<double>(cache.hits));
        add("era_cache_misses_total", "Sub-tree cache misses",
            MetricKind::kCounter, static_cast<double>(cache.misses));
        add("era_cache_evictions_total", "Sub-tree cache LRU evictions",
            MetricKind::kCounter, static_cast<double>(cache.evictions));
        add("era_cache_evicted_bytes_total",
            "Bytes of sub-trees dropped by LRU evictions",
            MetricKind::kCounter, static_cast<double>(cache.evicted_bytes));
        add("era_cache_resident_bytes", "Resident sub-tree cache bytes",
            MetricKind::kGauge, static_cast<double>(cache.resident_bytes));
        add("era_cache_resident_trees", "Resident cached sub-trees",
            MetricKind::kGauge, static_cast<double>(cache.resident_trees));
        uint64_t quarantined = 0;
        uint64_t failures = 0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          quarantined = quarantine_.size();
          for (const auto& [id, count] : quarantine_) failures += count;
        }
        add("era_query_quarantined_subtrees",
            "Sub-trees whose loads are currently failing",
            MetricKind::kGauge, static_cast<double>(quarantined));
        add("era_query_subtree_load_failures_total",
            "Total failed sub-tree load attempts", MetricKind::kCounter,
            static_cast<double>(failures));
        add("era_serving_in_flight", "Queries currently executing",
            MetricKind::kGauge, static_cast<double>(admission_.in_flight()));
        if (tracer_ != nullptr) {
          add("era_trace_started_total", "Traces started",
              MetricKind::kCounter,
              static_cast<double>(tracer_->traces_started()));
          add("era_trace_completed_total", "Traces completed",
              MetricKind::kCounter,
              static_cast<double>(tracer_->traces_completed()));
          add("era_trace_slow_total",
              "Completed traces over the slow-query threshold",
              MetricKind::kCounter,
              static_cast<double>(tracer_->slow_traces()));
        }
      });
}

std::shared_ptr<Trace> QueryEngine::MaybeStartTrace(const char* label,
                                                    const QueryContext& ctx) {
  if (tracer_ == nullptr) return nullptr;
  if (ctx.trace != nullptr) return nullptr;  // caller already traces this
  const uint64_t tick = trace_tick_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t every = std::max<uint64_t>(1, options_.trace.sample_every);
  if (tick % every != 0) return nullptr;
  return tracer_->StartTrace(label, ctx.client_id);
}

StatusOr<std::unique_ptr<QueryEngine::Session>> QueryEngine::AcquireSession() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_.empty()) {
      auto session = std::move(pool_.back());
      pool_.pop_back();
      return session;
    }
  }
  auto session = std::make_unique<Session>();
  StringReaderOptions reader_options;
  reader_options.buffer_bytes = options_.reader_buffer_bytes;
  ERA_ASSIGN_OR_RETURN(session->reader,
                       OpenStringReader(env_, index_.text().path,
                                        reader_options, &session->io));
  return session;
}

void QueryEngine::ReleaseSession(std::unique_ptr<Session> session) {
  if (metrics_ != nullptr) {
    // Retirement is the fold point: hot loops tally into the session's
    // plain structs contention-free, and one sharded-counter add per field
    // per lease lands them in the registry.
    const auto& io_fields = IoStatsFields();
    for (std::size_t i = 0; i < io_fields.size(); ++i) {
      const uint64_t value = session->io.*(io_fields[i].member);
      if (value != 0) metrics_->io[i]->Increment(value);
    }
    const auto& query_fields = QueryStatsFields();
    for (std::size_t i = 0; i < query_fields.size(); ++i) {
      const uint64_t value = session->stats.*(query_fields[i].member);
      if (value != 0) metrics_->query[i]->Increment(value);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_ == nullptr) {
    io_.Add(session->io);
    stats_.Add(session->stats);
  }
  session->io = IoStats{};
  session->stats = QueryStats{};
  if (pool_.size() < options_.max_pooled_sessions) {
    pool_.push_back(std::move(session));
  }
}

IoStats QueryEngine::io() const {
  if (metrics_ != nullptr) {
    // Thin view: the registry counters are the source of truth.
    IoStats io;
    const auto& fields = IoStatsFields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
      io.*(fields[i].member) = metrics_->io[i]->Value();
    }
    return io;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return io_;
}

QueryStats QueryEngine::stats() const {
  if (metrics_ != nullptr) {
    QueryStats stats;
    const auto& fields = QueryStatsFields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
      stats.*(fields[i].member) = metrics_->query[i]->Value();
    }
    return stats;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<uint32_t, uint64_t> QueryEngine::quarantine() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_;
}

StatusOr<std::shared_ptr<const ServedSubTree>>
QueryEngine::OpenSubTreeOrQuarantine(uint32_t id, Session* session,
                                     const QueryContext& ctx) {
  // Checkpoint span: the open either splices the LRU (hit) or loads the
  // sub-tree file from the device (miss); the note records which.
  TraceSpan span(ctx.trace, "subtree_open");
  const uint64_t hits_before = session->io.cache_hits;
  auto tree = index_.OpenSubTree(env_, id, &session->io, &ctx);
  if (ctx.trace != nullptr) {
    span.set_note(session->io.cache_hits > hits_before ? "cache_hit"
                                                       : "cache_miss");
  }
  if (tree.ok()) return tree;
  // A deadline or cancellation abandon says nothing about the file; pass it
  // through so an overloaded moment never poisons the quarantine map.
  if (tree.status().IsDeadlineExceeded() || tree.status().IsCancelled()) {
    return tree.status();
  }
  // The cache never admits a failed load (tree_index.cc), so the damage is
  // observed fresh on every attempt and repair needs no restart.
  ++session->stats.unavailable_queries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++quarantine_[id];
  }
  return Status::Unavailable("sub-tree " + std::to_string(id) +
                             " unavailable: " + tree.status().ToString());
}

QueryEngine::ReaderContextGuard::ReaderContextGuard(Session* session,
                                                    const QueryContext* ctx)
    : session_(session) {
  session_->reader->SetContext(ctx);
}

QueryEngine::ReaderContextGuard::~ReaderContextGuard() {
  session_->reader->SetContext(nullptr);
}

QueryEngine::Lease::~Lease() {
  if (session_ != nullptr && engine_ != nullptr) {
    engine_->ReleaseSession(std::move(session_));
  }
}

Status QueryEngine::Lease::Acquire(QueryEngine* engine) {
  engine_ = engine;
  ERA_ASSIGN_OR_RETURN(session_, engine->AcquireSession());
  return Status::OK();
}

StatusOr<uint32_t> QueryEngine::FindChild(const ServedSubTree& tree,
                                          uint32_t node, char symbol,
                                          Session* session) {
  const NodeView n = tree.node(node);
  uint32_t lo = 0;
  uint32_t hi = n.num_children;
  // The builders sort sibling blocks by unsigned byte value (the radix
  // prepare kernel extracts unsigned symbols), so the probe must compare
  // unsigned too or symbols >= 0x80 would binary-search the wrong half.
  const unsigned char want = static_cast<unsigned char>(symbol);
  char first = '\0';
  uint32_t got = 0;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    const NodeView c = tree.node(n.children_begin + mid);
    ERA_RETURN_NOT_OK(
        session->reader->RandomFetch(c.edge_start, 1, &first, &got));
    if (got != 1) return Status::Corruption("edge label out of text");
    ++session->stats.nodes_visited;
    const unsigned char have = static_cast<unsigned char>(first);
    if (have < want) {
      lo = mid + 1;
    } else if (have > want) {
      hi = mid;
    } else {
      return n.children_begin + mid;
    }
  }
  return kNilNode;
}

StatusOr<QueryEngine::SubTreeMatch> QueryEngine::MatchInSubTree(
    const ServedSubTree& tree, const QueryContext& ctx,
    const std::string& pattern, Session* session) {
  TraceSpan span(ctx.trace, "match");
  SubTreeMatch result;
  uint32_t node = 0;
  std::size_t matched = 0;
  char buf[256];
  while (matched < pattern.size()) {
    // Node-visit boundary: the descent abandons between nodes, never inside
    // an edge-label comparison.
    ERA_RETURN_NOT_OK(ctx.Check());
    ERA_ASSIGN_OR_RETURN(uint32_t child,
                         FindChild(tree, node, pattern[matched], session));
    if (child == kNilNode) return result;  // no child continues the pattern
    const NodeView c = tree.node(child);
    // FindChild verified the first label symbol; walk the rest of the label.
    uint32_t j = 1;
    ++matched;
    while (j < c.edge_len && matched < pattern.size()) {
      uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
          sizeof(buf),
          std::min<uint64_t>(c.edge_len - j, pattern.size() - matched)));
      uint32_t got = 0;
      ERA_RETURN_NOT_OK(
          session->reader->RandomFetch(c.edge_start + j, chunk, buf, &got));
      if (got != chunk) return Status::Corruption("edge label truncated");
      for (uint32_t i = 0; i < chunk; ++i) {
        if (buf[i] != pattern[matched + i]) {
          return result;  // mismatch inside the edge: no occurrences
        }
      }
      j += chunk;
      matched += chunk;
    }
    node = child;
  }
  result.matched = true;
  result.node = node;
  return result;
}

StatusOr<uint64_t> QueryEngine::CountWithSession(Session* session,
                                                 const QueryContext& ctx,
                                                 const std::string& pattern) {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  ERA_RETURN_NOT_OK(ctx.Check());
  ++session->stats.queries;

  PrefixTrie::DescendResult walk = index_.Route(pattern);
  if (walk.pattern_exhausted) {
    // Frequencies are precomputed in the trie: no sub-tree I/O needed.
    ++session->stats.trie_resolved_counts;
    return index_.trie().TotalFrequency(walk.node);
  }
  const PrefixTrie::Node& node = index_.trie().node(walk.node);
  if (node.subtree_id < 0) return 0;  // fell off the trie: no occurrences
  ERA_ASSIGN_OR_RETURN(
      auto tree, OpenSubTreeOrQuarantine(
                     static_cast<uint32_t>(node.subtree_id), session, ctx));
  ERA_ASSIGN_OR_RETURN(SubTreeMatch match,
                       MatchInSubTree(*tree, ctx, pattern, session));
  if (!match.matched) return 0;
  // Both serving forms answer from the match node alone — no enumeration.
  return tree->node(match.node).count;
}

StatusOr<std::vector<uint64_t>> QueryEngine::LocateWithSession(
    Session* session, const QueryContext& ctx, const std::string& pattern,
    std::size_t limit, LocateOrder order) {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  ERA_RETURN_NOT_OK(ctx.Check());
  ++session->stats.queries;

  // kSmallest must see every occurrence before selecting; kArbitrary stops
  // decoding leaf slots the moment `limit` are in hand — that bound holds
  // across sub-trees too (the exhausted-pattern path below stops opening
  // further sub-trees once filled).
  const std::size_t collect_limit =
      order == LocateOrder::kArbitrary ? limit : SIZE_MAX;

  std::vector<uint64_t> hits;
  PrefixTrie::DescendResult walk = index_.Route(pattern);
  if (walk.pattern_exhausted) {
    // Every suffix below this trie node starts with the pattern.
    std::vector<PrefixTrie::Entry> entries;
    index_.trie().CollectEntries(walk.node, &entries);
    for (const auto& entry : entries) {
      if (hits.size() >= collect_limit) break;
      ERA_RETURN_NOT_OK(ctx.Check());
      if (entry.subtree_id >= 0) {
        ERA_ASSIGN_OR_RETURN(
            auto tree,
            OpenSubTreeOrQuarantine(static_cast<uint32_t>(entry.subtree_id),
                                    session, ctx));
        TraceSpan span(ctx.trace, "collect");
        ERA_RETURN_NOT_OK(
            tree->CollectLeaves(0, &ctx, collect_limit - hits.size(), &hits));
      } else {
        hits.push_back(entry.leaf_position);
      }
    }
  } else {
    const PrefixTrie::Node& node = index_.trie().node(walk.node);
    if (node.subtree_id < 0) {
      return hits;  // fell off the trie: no occurrences
    }
    ERA_ASSIGN_OR_RETURN(
        auto tree, OpenSubTreeOrQuarantine(
                       static_cast<uint32_t>(node.subtree_id), session, ctx));
    // Sub-tree labels carry the full path from the global root, so match
    // the whole pattern inside the sub-tree.
    ERA_ASSIGN_OR_RETURN(SubTreeMatch match,
                         MatchInSubTree(*tree, ctx, pattern, session));
    if (match.matched) {
      TraceSpan span(ctx.trace, "collect");
      ERA_RETURN_NOT_OK(
          tree->CollectLeaves(match.node, &ctx, collect_limit, &hits));
    }
  }
  // Counts what was actually decoded — kArbitrary's whole point is that
  // this stays O(limit) instead of O(occurrences).
  session->stats.leaves_enumerated += hits.size();
  // kSmallest guarantees the smallest `limit` offsets, not the first `limit`
  // in tree order; a small limit only pays a selection, not a full sort.
  if (hits.size() > limit) {
    std::nth_element(hits.begin(), hits.begin() + limit, hits.end());
    hits.resize(limit);
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

StatusOr<uint64_t> QueryEngine::Count(const std::string& pattern) {
  return Count(QueryContext::Background(), pattern);
}

StatusOr<uint64_t> QueryEngine::Count(const QueryContext& ctx,
                                      const std::string& pattern) {
  auto trace = MaybeStartTrace("count", ctx);
  if (trace == nullptr) return CountImpl(ctx, pattern);
  QueryContext traced = ctx;
  traced.trace = trace.get();
  return FinishTraced(trace, CountImpl(traced, pattern));
}

StatusOr<uint64_t> QueryEngine::CountImpl(const QueryContext& ctx,
                                          const std::string& pattern) {
  Permit permit;
  {
    TraceSpan span(ctx.trace, "admission");
    ERA_RETURN_NOT_OK(admission_.Admit(ctx, &permit));
  }
  Lease lease;
  ERA_RETURN_NOT_OK(lease.Acquire(this));
  ReaderContextGuard guard(lease.get(), &ctx);
  auto result = CountWithSession(lease.get(), ctx, pattern);
  if (!result.ok()) admission_.RecordOutcome(result.status());
  return result;
}

StatusOr<std::vector<uint64_t>> QueryEngine::Locate(const std::string& pattern,
                                                    std::size_t limit,
                                                    LocateOrder order) {
  return Locate(QueryContext::Background(), pattern, limit, order);
}

StatusOr<std::vector<uint64_t>> QueryEngine::Locate(const QueryContext& ctx,
                                                    const std::string& pattern,
                                                    std::size_t limit,
                                                    LocateOrder order) {
  auto trace = MaybeStartTrace("locate", ctx);
  if (trace == nullptr) return LocateImpl(ctx, pattern, limit, order);
  QueryContext traced = ctx;
  traced.trace = trace.get();
  return FinishTraced(trace, LocateImpl(traced, pattern, limit, order));
}

StatusOr<std::vector<uint64_t>> QueryEngine::LocateImpl(
    const QueryContext& ctx, const std::string& pattern, std::size_t limit,
    LocateOrder order) {
  Permit permit;
  {
    TraceSpan span(ctx.trace, "admission");
    ERA_RETURN_NOT_OK(admission_.Admit(ctx, &permit));
  }
  Lease lease;
  ERA_RETURN_NOT_OK(lease.Acquire(this));
  ReaderContextGuard guard(lease.get(), &ctx);
  auto result = LocateWithSession(lease.get(), ctx, pattern, limit, order);
  if (!result.ok()) admission_.RecordOutcome(result.status());
  return result;
}

StatusOr<bool> QueryEngine::Contains(const std::string& pattern) {
  return Contains(QueryContext::Background(), pattern);
}

StatusOr<bool> QueryEngine::Contains(const QueryContext& ctx,
                                     const std::string& pattern) {
  ERA_ASSIGN_OR_RETURN(uint64_t count, Count(ctx, pattern));
  return count > 0;
}

StatusOr<std::vector<uint64_t>> QueryEngine::CountBatch(
    const std::vector<std::string>& patterns) {
  // Context-free contract: abort on the first error (kept for existing
  // callers). Still admission-tracked so Drain() covers it.
  Permit permit;
  ERA_RETURN_NOT_OK(admission_.Admit(QueryContext::Background(), &permit));
  Lease lease;
  ERA_RETURN_NOT_OK(lease.Acquire(this));
  std::vector<uint64_t> counts;
  counts.reserve(patterns.size());
  // Identical patterns are answered once: the first occurrence does the
  // descent, duplicates copy its result (views into `patterns`, which
  // outlives the loop).
  std::map<std::string_view, uint64_t> memo;
  for (const std::string& pattern : patterns) {
    auto it = memo.find(pattern);
    if (it != memo.end()) {
      ++lease.get()->stats.batch_duplicates_folded;
      counts.push_back(it->second);
      continue;
    }
    ERA_ASSIGN_OR_RETURN(
        uint64_t count,
        CountWithSession(lease.get(), QueryContext::Background(), pattern));
    memo.emplace(pattern, count);
    counts.push_back(count);
  }
  return counts;
}

StatusOr<std::vector<std::vector<uint64_t>>> QueryEngine::LocateBatch(
    const std::vector<std::string>& patterns, std::size_t limit) {
  Permit permit;
  ERA_RETURN_NOT_OK(admission_.Admit(QueryContext::Background(), &permit));
  Lease lease;
  ERA_RETURN_NOT_OK(lease.Acquire(this));
  std::vector<std::vector<uint64_t>> results;
  results.reserve(patterns.size());
  // Duplicate folding: memo values index the first occurrence's result so
  // repeated offset vectors copy instead of re-enumerating leaves.
  std::map<std::string_view, std::size_t> memo;
  for (const std::string& pattern : patterns) {
    auto it = memo.find(pattern);
    if (it != memo.end()) {
      ++lease.get()->stats.batch_duplicates_folded;
      results.push_back(results[it->second]);
      continue;
    }
    ERA_ASSIGN_OR_RETURN(auto hits,
                         LocateWithSession(lease.get(),
                                           QueryContext::Background(), pattern,
                                           limit, LocateOrder::kSmallest));
    memo.emplace(pattern, results.size());
    results.push_back(std::move(hits));
  }
  return results;
}

namespace {

/// Whether a per-item failure ends the whole batch: the caller's deadline
/// and cancellation apply to the batch, not the item, so those stop it
/// mid-flight; anything else (bad pattern, quarantined sub-tree) is that
/// item's own problem.
bool TerminatesBatch(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsCancelled();
}

}  // namespace

StatusOr<std::vector<CountOutcome>> QueryEngine::CountBatch(
    const QueryContext& ctx, const std::vector<std::string>& patterns) {
  auto trace = MaybeStartTrace("count_batch", ctx);
  if (trace == nullptr) return CountBatchImpl(ctx, patterns);
  QueryContext traced = ctx;
  traced.trace = trace.get();
  return FinishTraced(trace, CountBatchImpl(traced, patterns));
}

StatusOr<std::vector<CountOutcome>> QueryEngine::CountBatchImpl(
    const QueryContext& ctx, const std::vector<std::string>& patterns) {
  Permit permit;
  {
    TraceSpan span(ctx.trace, "admission");
    ERA_RETURN_NOT_OK(admission_.Admit(ctx, &permit));
  }
  Lease lease;
  ERA_RETURN_NOT_OK(lease.Acquire(this));
  ReaderContextGuard guard(lease.get(), &ctx);
  std::vector<CountOutcome> outcomes(patterns.size());
  Status terminal;
  // Duplicate folding happens in original item order, AFTER the terminal
  // check: a duplicate past the stop point is stamped like any other item,
  // so the stamp-the-remainder contract is unchanged.
  std::map<std::string_view, std::size_t> memo;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (!terminal.ok()) {
      outcomes[i].status = terminal;
      continue;
    }
    auto it = memo.find(patterns[i]);
    if (it != memo.end()) {
      ++lease.get()->stats.batch_duplicates_folded;
      outcomes[i] = outcomes[it->second];
      continue;
    }
    auto result = CountWithSession(lease.get(), ctx, patterns[i]);
    if (result.ok()) {
      outcomes[i].count = *result;
      memo.emplace(patterns[i], i);
    } else {
      outcomes[i].status = result.status();
      if (TerminatesBatch(result.status())) {
        terminal = result.status();
        admission_.RecordOutcome(terminal);
      } else {
        // Per-item failures are deterministic for this batch; fold their
        // duplicates too rather than re-failing the same way.
        memo.emplace(patterns[i], i);
      }
    }
  }
  return outcomes;
}

StatusOr<std::vector<LocateOutcome>> QueryEngine::LocateBatch(
    const QueryContext& ctx, const std::vector<std::string>& patterns,
    std::size_t limit) {
  auto trace = MaybeStartTrace("locate_batch", ctx);
  if (trace == nullptr) return LocateBatchImpl(ctx, patterns, limit);
  QueryContext traced = ctx;
  traced.trace = trace.get();
  return FinishTraced(trace, LocateBatchImpl(traced, patterns, limit));
}

StatusOr<std::vector<LocateOutcome>> QueryEngine::LocateBatchImpl(
    const QueryContext& ctx, const std::vector<std::string>& patterns,
    std::size_t limit) {
  Permit permit;
  {
    TraceSpan span(ctx.trace, "admission");
    ERA_RETURN_NOT_OK(admission_.Admit(ctx, &permit));
  }
  Lease lease;
  ERA_RETURN_NOT_OK(lease.Acquire(this));
  ReaderContextGuard guard(lease.get(), &ctx);
  std::vector<LocateOutcome> outcomes(patterns.size());
  Status terminal;
  // Same in-order duplicate folding as CountBatchImpl.
  std::map<std::string_view, std::size_t> memo;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (!terminal.ok()) {
      outcomes[i].status = terminal;
      continue;
    }
    auto it = memo.find(patterns[i]);
    if (it != memo.end()) {
      ++lease.get()->stats.batch_duplicates_folded;
      outcomes[i] = outcomes[it->second];
      continue;
    }
    auto result = LocateWithSession(lease.get(), ctx, patterns[i], limit,
                                    LocateOrder::kSmallest);
    if (result.ok()) {
      outcomes[i].offsets = std::move(*result);
      memo.emplace(patterns[i], i);
    } else {
      outcomes[i].status = result.status();
      if (TerminatesBatch(result.status())) {
        terminal = result.status();
        admission_.RecordOutcome(terminal);
      } else {
        memo.emplace(patterns[i], i);
      }
    }
  }
  return outcomes;
}

}  // namespace era
