#include "query/admission.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace era {

namespace {

/// Upper bounds of the queue-wait histogram buckets, in seconds. The shared
/// Histogram assigns values upper-inclusively (value <= bound), preserving
/// the semantics of the original hand-rolled bucket loop this replaced
/// (pinned by admission_test).
constexpr double kWaitBounds[ServingStats::kWaitBuckets] = {
    0.00025, 0.001, 0.004, 0.016, 0.064,
    0.256,   1.0,   std::numeric_limits<double>::infinity()};

}  // namespace

double ServingStats::WaitBucketBound(uint32_t i) {
  return kWaitBounds[std::min(i, kWaitBuckets - 1)];
}

std::vector<double> ServingStats::WaitBucketBounds() {
  return {kWaitBounds, kWaitBounds + kWaitBuckets};
}

void ServingStats::Add(const ServingStats& other) {
  admitted += other.admitted;
  queued += other.queued;
  shed += other.shed;
  deadline_exceeded += other.deadline_exceeded;
  cancelled += other.cancelled;
  deadline_evicted += other.deadline_evicted;
  for (uint32_t i = 0; i < kWaitBuckets; ++i) {
    queue_wait_buckets[i] += other.queue_wait_buckets[i];
  }
}

Permit& Permit::operator=(Permit&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    other.controller_ = nullptr;
  }
  return *this;
}

void Permit::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  if (options_.registry != nullptr) {
    MetricsRegistry* reg = options_.registry;
    const MetricLabels& labels = options_.metric_labels;
    admitted_ = reg->GetCounter("era_serving_admitted_total",
                                "Requests granted an admission slot", labels);
    queued_ = reg->GetCounter("era_serving_queued_total",
                              "Admitted requests that waited in the queue",
                              labels);
    shed_ = reg->GetCounter("era_serving_shed_total",
                            "Requests refused with ResourceExhausted", labels);
    deadline_exceeded_ = reg->GetCounter(
        "era_serving_deadline_exceeded_total",
        "Requests whose deadline expired before, while queued, or in flight",
        labels);
    cancelled_ = reg->GetCounter("era_serving_cancelled_total",
                                 "Requests cancelled before, while queued, or "
                                 "in flight",
                                 labels);
    deadline_evicted_ = reg->GetCounter(
        "era_serving_deadline_evicted_total",
        "Waiters evicted at grant time because their deadline passed in the "
        "queue",
        labels);
    queue_wait_ = reg->GetHistogram(
        "era_serving_queue_wait_seconds",
        "Queue wait of requests that actually queued before admission",
        labels, ServingStats::WaitBucketBounds());
  } else {
    admitted_ = std::make_shared<Counter>();
    queued_ = std::make_shared<Counter>();
    shed_ = std::make_shared<Counter>();
    deadline_exceeded_ = std::make_shared<Counter>();
    cancelled_ = std::make_shared<Counter>();
    deadline_evicted_ = std::make_shared<Counter>();
    queue_wait_ =
        std::make_shared<Histogram>(ServingStats::WaitBucketBounds());
  }
}

AdmissionController::~AdmissionController() {
  // Waiters borrow stack frames from live Admit calls; destroying the
  // controller under them is a caller bug (QueryEngine owns both and joins
  // its callers first).
  assert(total_waiters_ == 0 && "AdmissionController destroyed with waiters");
}

Status AdmissionController::Admit(const QueryContext& ctx, Permit* permit) {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    shed_->Increment();
    return Status::ResourceExhausted("serving is draining");
  }
  if (ctx.cancelled()) {
    cancelled_->Increment();
    return Status::Cancelled("query cancelled before admission");
  }
  const auto now = QueryContext::Clock::now();
  if (ctx.expired(now)) {
    deadline_exceeded_->Increment();
    return Status::DeadlineExceeded("query deadline passed before admission");
  }
  if (!options_.enabled) {
    // Everything is admitted instantly, but in-flight is still tracked so
    // Drain()/WaitIdle() keep their contract with the controller disabled.
    ++in_flight_;
    admitted_->Increment();
    *permit = Permit(this);
    return Status::OK();
  }
  if (in_flight_ < options_.max_in_flight && total_waiters_ == 0) {
    ++in_flight_;
    admitted_->Increment();
    *permit = Permit(this);
    return Status::OK();
  }
  // Must queue (or shed). Bounded: beyond the burst buffer the honest
  // answer is an immediate refusal, not a wait the deadline will eat.
  if (total_waiters_ >= options_.max_queue) {
    shed_->Increment();
    return Status::ResourceExhausted("admission queue is full");
  }
  std::deque<Waiter*>& queue = queues_[ctx.client_id];
  if (options_.max_queue_per_client > 0 &&
      queue.size() >= options_.max_queue_per_client) {
    shed_->Increment();
    return Status::ResourceExhausted("client admission queue is full");
  }
  Waiter waiter;
  waiter.ctx = &ctx;
  waiter.enqueued_at = now;
  if (queue.empty()) rr_.push_back(ctx.client_id);
  queue.push_back(&waiter);
  ++total_waiters_;
  // A slot may already be free (e.g. the immediate path skipped it because
  // waiters existed a moment ago); give the queue a chance right away.
  GrantLocked(now);
  const auto poll = std::chrono::duration_cast<QueryContext::Clock::duration>(
      std::chrono::duration<double>(
          std::max(options_.queue_poll_seconds, 1e-4)));
  while (waiter.wake == Wake::kWaiting) {
    auto wake_at = QueryContext::Clock::now() + poll;
    if (ctx.has_deadline()) wake_at = std::min(wake_at, ctx.deadline);
    waiter.cv.wait_until(lock, wake_at);
    if (waiter.wake != Wake::kWaiting) break;
    if (ctx.cancelled()) {
      RemoveWaiterLocked(ctx.client_id, &waiter);
      cancelled_->Increment();
      return Status::Cancelled("query cancelled while queued");
    }
    if (ctx.expired(QueryContext::Clock::now())) {
      RemoveWaiterLocked(ctx.client_id, &waiter);
      deadline_exceeded_->Increment();
      return Status::DeadlineExceeded("query deadline passed while queued");
    }
  }
  switch (waiter.wake) {
    case Wake::kGranted: {
      const double waited = std::chrono::duration<double>(
                                QueryContext::Clock::now() - waiter.enqueued_at)
                                .count();
      queued_->Increment();
      admitted_->Increment();
      queue_wait_->Observe(waited);
      *permit = Permit(this);
      return Status::OK();
    }
    case Wake::kShed:
      // Drain swept the queue; it already billed the shed.
      return Status::ResourceExhausted("serving is draining");
    case Wake::kEvicted:
      // The granter billed the eviction; report what it saw.
      if (ctx.cancelled()) {
        return Status::Cancelled("query cancelled while queued");
      }
      return Status::DeadlineExceeded("query deadline passed while queued");
    case Wake::kWaiting:
      break;
  }
  return Status::Internal("admission waiter woke in an impossible state");
}

void AdmissionController::GrantLocked(QueryContext::Clock::time_point now) {
  while (!draining_ && in_flight_ < options_.max_in_flight &&
         total_waiters_ > 0 && !rr_.empty()) {
    const uint64_t client = rr_.front();
    rr_.pop_front();
    auto qit = queues_.find(client);
    assert(qit != queues_.end());
    std::deque<Waiter*>& queue = qit->second;
    bool granted_one = false;
    while (!queue.empty() && !granted_one) {
      Waiter* waiter = queue.front();
      const bool was_cancelled = waiter->ctx->cancelled();
      if (was_cancelled || waiter->ctx->expired(now)) {
        // Queue-deadline eviction: never hand a slot to a request that can
        // no longer use it.
        queue.pop_front();
        --total_waiters_;
        waiter->wake = Wake::kEvicted;
        if (was_cancelled) {
          cancelled_->Increment();
        } else {
          deadline_exceeded_->Increment();
          deadline_evicted_->Increment();
        }
        waiter->cv.notify_one();
        continue;
      }
      queue.pop_front();
      --total_waiters_;
      waiter->wake = Wake::kGranted;
      ++in_flight_;
      waiter->cv.notify_one();
      granted_one = true;
    }
    if (queue.empty()) {
      queues_.erase(qit);
    } else {
      rr_.push_back(client);  // round-robin: back of the line
    }
  }
}

void AdmissionController::RemoveWaiterLocked(uint64_t client_id,
                                             Waiter* waiter) {
  auto qit = queues_.find(client_id);
  if (qit == queues_.end()) return;
  std::deque<Waiter*>& queue = qit->second;
  auto it = std::find(queue.begin(), queue.end(), waiter);
  if (it == queue.end()) return;
  queue.erase(it);
  --total_waiters_;
  if (queue.empty()) {
    queues_.erase(qit);
    auto rit = std::find(rr_.begin(), rr_.end(), client_id);
    if (rit != rr_.end()) rr_.erase(rit);
  }
}

void AdmissionController::ReleaseSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(in_flight_ > 0);
  --in_flight_;
  GrantLocked(QueryContext::Clock::now());
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void AdmissionController::RecordOutcome(const Status& status) {
  if (!status.IsDeadlineExceeded() && !status.IsCancelled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (status.IsDeadlineExceeded()) {
    deadline_exceeded_->Increment();
  } else {
    cancelled_->Increment();
  }
}

void AdmissionController::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  for (auto& [client, queue] : queues_) {
    for (Waiter* waiter : queue) {
      waiter->wake = Wake::kShed;
      shed_->Increment();
      waiter->cv.notify_one();
    }
  }
  queues_.clear();
  rr_.clear();
  total_waiters_ = 0;
}

void AdmissionController::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = false;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void AdmissionController::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

uint32_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

ServingStats AdmissionController::stats() const {
  // The counters are lock-free; each field is internally consistent and the
  // view is as coherent as the old under-lock copy was to its callers.
  ServingStats stats;
  stats.admitted = admitted_->Value();
  stats.queued = queued_->Value();
  stats.shed = shed_->Value();
  stats.deadline_exceeded = deadline_exceeded_->Value();
  stats.cancelled = cancelled_->Value();
  stats.deadline_evicted = deadline_evicted_->Value();
  const HistogramSnapshot wait = queue_wait_->snapshot();
  for (uint32_t i = 0;
       i < ServingStats::kWaitBuckets && i < wait.counts.size(); ++i) {
    stats.queue_wait_buckets[i] = wait.counts[i];
  }
  return stats;
}

}  // namespace era
