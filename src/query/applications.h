// Suffix-tree applications from the paper's motivation (Section 1): longest
// repeated substring, generalized suffix trees over document collections,
// longest common substring, and frequent-motif extraction for time series.
//
// These walk every sub-tree of an index with the text memory-resident; they
// are analysis passes, not point queries.

#ifndef ERA_QUERY_APPLICATIONS_H_
#define ERA_QUERY_APPLICATIONS_H_

#include <string>
#include <vector>

#include "collection/document_map.h"
#include "common/status.h"
#include "suffixtree/tree_index.h"

namespace era {

/// A located substring of the indexed text.
struct Substring {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Longest substring occurring at least twice (deepest internal node).
/// Returns length 0 if nothing repeats.
StatusOr<Substring> LongestRepeatedSubstring(Env* env, const TreeIndex& index,
                                             const std::string& text);

/// The most frequent substring of exactly `k` symbols and its occurrence
/// count (the time-series motif primitive).
struct Motif {
  uint64_t offset = 0;
  uint64_t count = 0;
};
StatusOr<Motif> MostFrequentKmer(Env* env, const TreeIndex& index,
                                 const std::string& text, uint64_t k);

/// Concatenates documents with `separator` between them (generalized
/// suffix tree input). Returns the combined text (terminal appended) and a
/// DocumentMap cataloging the spans (documents are named "doc0", "doc1",
/// ...). InvalidArgument if a document contains the separator or terminal
/// byte — collisions fail here, at ingestion, not later at query time.
/// Empty documents and single-document collections are legal layouts.
StatusOr<GeneralizedCollection> ConcatenateDocuments(
    const std::vector<std::string>& documents, char separator);

/// Longest common substring of documents `doc_a` and `doc_b` inside a
/// generalized index built over ConcatenateDocuments/ConcatenateCollection
/// output. Offset→document resolution and the boundary-crossing check both
/// come from the DocumentMap. The result offset refers to the combined text.
StatusOr<Substring> LongestCommonSubstring(Env* env, const TreeIndex& index,
                                           const DocumentMap& documents,
                                           uint32_t doc_a, uint32_t doc_b);

}  // namespace era

#endif  // ERA_QUERY_APPLICATIONS_H_
