// Shared-descent dictionary matching: the engine behind
// QueryEngine::MatchDictionary (see query_engine.h for the public contract).
//
// The per-pattern loop pays one root-to-locus descent per pattern, so a
// dictionary of 10k patterns re-walks the same shared prefixes thousands of
// times. This matcher walks the tree once per DISTINCT shared prefix:
//
//   1. Dedup + sort. Patterns are bucketed into a std::map keyed by
//      string_view (memcmp order — exactly the unsigned byte order the
//      builders sort sibling blocks by), so duplicates fold to one unique
//      pattern and the unique set comes out in tree child order.
//   2. Group by sub-tree. Each unique pattern routes once through the k-mer
//      dispatch table; consecutive unique patterns landing in the same
//      sub-tree form a group. The trie's sub-tree paths are prefix-free, so
//      a sub-tree's patterns are one contiguous run of the sorted order —
//      every touched sub-tree is opened exactly once.
//   3. Range descent. A group descends its sub-tree with a pattern-range
//      cursor [lo, hi): at each node the range splits at child boundaries
//      (one FindChild probe per distinct next symbol), each edge label is
//      fetched ONCE and every pattern in the range advances through it
//      together, mismatching patterns peel off the range edges, and a
//      pattern whose bytes run out resolves at the current locus with the
//      node's stored subtree count — byte-identical to MatchInSubTree's
//      verdicts.
//   4. Shared leaf work (locate mode). Matched loci are resolved with one
//      ServedSubTree::CollectLeafSlices pass per sub-tree: laminar match
//      ranges share decoded leaf runs instead of one CollectLeaves each.
//
// Deadline/cancel checkpoints sit at group and node boundaries plus every
// device read; a terminal status stamps everything unresolved, matching the
// batch stamp-the-remainder contract.

#ifndef ERA_QUERY_DICT_MATCHER_H_
#define ERA_QUERY_DICT_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query_engine.h"

namespace era {

/// One MatchDictionary call's worth of state. Constructed inside the
/// engine's admission/lease scope (it is a friend of QueryEngine) and runs
/// entirely on the leased session.
class DictMatcher {
 public:
  DictMatcher(QueryEngine* engine, QueryEngine::Session* session,
              const QueryContext& ctx, const DictMatchOptions& options)
      : engine_(engine), session_(session), ctx_(ctx), options_(options) {}

  /// Answers every pattern into `outcomes` (index-aligned with `patterns`).
  /// Failures are always per-item — terminal ones stamp the remainder — so
  /// this never fails as a whole.
  void Run(const std::vector<std::string>& patterns,
           std::vector<DictOutcome>* outcomes);

 private:
  /// Where routing left a unique pattern.
  enum class RouteKind {
    kTrie,     // pattern exhausted inside the trie (answered from it)
    kMiss,     // fell off the trie: zero occurrences
    kSubTree,  // continues inside a sub-tree (the shared-descent case)
  };

  /// One distinct pattern plus the batch items it answers.
  struct UniquePattern {
    const std::string* pattern = nullptr;
    std::vector<std::size_t> items;  // outcome indices (original order)
    RouteKind kind = RouteKind::kMiss;
    uint32_t trie_node = 0;
    int32_t subtree_id = -1;
    bool resolved = false;
  };

  /// A pattern matched at sub-tree slot `slot`; leaf resolution pends.
  struct MatchedSlot {
    std::size_t unique = 0;
    uint32_t slot = 0;
  };

  /// Fans `count` out to every item of unique pattern `w` (offsets stay
  /// empty: used for misses and count-mode resolutions).
  void ResolveCount(std::size_t w, uint64_t count);
  /// Records a match at `node` for unique pattern `w`. Count mode resolves
  /// immediately from the node's subtree count; locate mode defers to the
  /// per-sub-tree leaf pass.
  void ResolveMatch(std::size_t w, const ServedSubTree& tree, uint32_t node,
                    std::vector<MatchedSlot>* matched);
  /// Stamps `status` on every item of `w` if it is still unresolved.
  /// `counts_as_query` distinguishes an item that failed on its own (it ran)
  /// from one stamped by someone else's terminal status (it never ran).
  void StampUnresolved(std::size_t w, const Status& status,
                       bool counts_as_query);

  /// Answers a trie-resolved pattern (frequency table; locate mode falls
  /// back to the engine's single-pattern path — rare and already optimal).
  Status ResolveTrie(std::size_t w);
  /// Opens the group's sub-tree once and runs the range descent plus (in
  /// locate mode) the shared leaf pass. [lo, hi) indexes unique_.
  Status RunGroup(std::size_t lo, std::size_t hi);
  /// The range descent itself.
  Status Descend(const ServedSubTree& tree, std::size_t lo, std::size_t hi,
                 std::vector<MatchedSlot>* matched);
  /// One CollectLeafSlices pass resolving every matched locus of a group.
  Status ResolveLocates(const ServedSubTree& tree,
                        const std::vector<MatchedSlot>& matched);

  QueryEngine* engine_;
  QueryEngine::Session* session_;
  const QueryContext& ctx_;
  DictMatchOptions options_;

  std::vector<UniquePattern> unique_;  // sorted in memcmp order
  std::vector<DictOutcome>* outcomes_ = nullptr;
};

}  // namespace era

#endif  // ERA_QUERY_DICT_MATCHER_H_
