#include "query/dict_matcher.h"

#include <algorithm>
#include <map>
#include <string_view>

namespace era {

namespace {

/// Mirrors the batch contract (query_engine.cc): the caller's deadline and
/// cancellation stop the dictionary mid-flight; anything else is the
/// pattern's (or its sub-tree's) own problem.
bool TerminatesDictionary(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsCancelled();
}

}  // namespace

void DictMatcher::ResolveCount(std::size_t w, uint64_t count) {
  UniquePattern& up = unique_[w];
  ++session_->stats.queries;
  for (std::size_t item : up.items) (*outcomes_)[item].count = count;
  up.resolved = true;
}

void DictMatcher::ResolveMatch(std::size_t w, const ServedSubTree& tree,
                               uint32_t node,
                               std::vector<MatchedSlot>* matched) {
  const uint64_t count = tree.node(node).count;
  if (!options_.locate) {
    ResolveCount(w, count);
    return;
  }
  UniquePattern& up = unique_[w];
  ++session_->stats.queries;
  for (std::size_t item : up.items) (*outcomes_)[item].count = count;
  // Resolved only once the group's leaf pass delivers the offsets, so a
  // failure between here and there still stamps this pattern.
  matched->push_back(MatchedSlot{w, node});
}

void DictMatcher::StampUnresolved(std::size_t w, const Status& status,
                                  bool counts_as_query) {
  UniquePattern& up = unique_[w];
  if (up.resolved) return;
  if (counts_as_query) ++session_->stats.queries;
  for (std::size_t item : up.items) {
    (*outcomes_)[item].status = status;
    (*outcomes_)[item].count = 0;
    (*outcomes_)[item].offsets.clear();
  }
  up.resolved = true;
}

Status DictMatcher::ResolveTrie(std::size_t w) {
  UniquePattern& up = unique_[w];
  if (!options_.locate) {
    ++session_->stats.trie_resolved_counts;
    ResolveCount(w, engine_->index_.trie().TotalFrequency(up.trie_node));
    return Status::OK();
  }
  // Locate for a trie-exhausted pattern spans sub-trees; the single-pattern
  // path already does exactly the right walk (and counts its own query).
  auto hits = engine_->LocateWithSession(session_, ctx_, *up.pattern,
                                         options_.locate_limit,
                                         LocateOrder::kSmallest);
  ERA_RETURN_NOT_OK(hits.status());
  const uint64_t total = engine_->index_.trie().TotalFrequency(up.trie_node);
  for (std::size_t item : up.items) {
    (*outcomes_)[item].count = total;
    (*outcomes_)[item].offsets = *hits;
  }
  up.resolved = true;
  return Status::OK();
}

Status DictMatcher::Descend(const ServedSubTree& tree, std::size_t lo,
                            std::size_t hi,
                            std::vector<MatchedSlot>* matched) {
  // Sub-tree labels carry the full path from the global root (trie.h), so
  // the descent starts at sub-tree node 0 with depth 0 for every pattern.
  struct Frame {
    uint32_t node = 0;
    std::size_t depth = 0;
    std::size_t lo = 0;
    std::size_t hi = 0;
  };
  std::vector<Frame> stack{Frame{0, 0, lo, hi}};
  char buf[256];
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    // Node-visit boundary, same cadence as MatchInSubTree.
    ERA_RETURN_NOT_OK(ctx_.Check());
    // At most one pattern can end exactly at this depth (dedup made the
    // shared prefix itself unique); it matches at this node.
    while (f.lo < f.hi && unique_[f.lo].pattern->size() == f.depth) {
      ResolveMatch(f.lo, tree, f.node, matched);
      ++f.lo;
    }
    // Split the range at child boundaries: patterns are sorted, so each
    // distinct next symbol is one contiguous run and costs one child probe.
    std::size_t a = f.lo;
    while (a < f.hi) {
      const unsigned char sym =
          static_cast<unsigned char>((*unique_[a].pattern)[f.depth]);
      std::size_t b = a + 1;
      while (b < f.hi && static_cast<unsigned char>(
                             (*unique_[b].pattern)[f.depth]) == sym) {
        ++b;
      }
      ERA_ASSIGN_OR_RETURN(
          uint32_t child,
          engine_->FindChild(tree, f.node, static_cast<char>(sym), session_));
      if (child == kNilNode) {
        for (std::size_t w = a; w < b; ++w) ResolveCount(w, 0);
        a = b;
        continue;
      }
      ++session_->stats.dict_descents_shared;
      session_->stats.dict_descents_saved += (b - a) - 1;
      const NodeView c = tree.node(child);
      // Walk the edge label ONCE for the whole [a, b) run. FindChild
      // verified label symbol 0. Invariant kept below: every surviving
      // pattern is strictly longer than the current depth, so the chunk
      // bound stays positive.
      std::size_t lo2 = a;
      std::size_t hi2 = b;
      std::size_t max_size = 0;
      for (std::size_t w = a; w < b; ++w) {
        max_size = std::max(max_size, unique_[w].pattern->size());
      }
      uint32_t j = 1;
      bool alive = true;
      while (j < c.edge_len && alive) {
        while (lo2 < hi2 && unique_[lo2].pattern->size() == f.depth + j) {
          // Ends inside the edge: the locus is mid-edge, every occurrence
          // sits under `child` (MatchInSubTree's verdict for this case).
          ResolveMatch(lo2, tree, child, matched);
          ++lo2;
        }
        if (lo2 == hi2) {
          alive = false;
          break;
        }
        const uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
            sizeof(buf), std::min<uint64_t>(c.edge_len - j,
                                            max_size - f.depth - j)));
        uint32_t got = 0;
        ERA_RETURN_NOT_OK(
            session_->reader->RandomFetch(c.edge_start + j, chunk, buf, &got));
        if (got != chunk) return Status::Corruption("edge label truncated");
        for (uint32_t t = 0; t < chunk; ++t) {
          const std::size_t d = f.depth + j + t;
          if (t != 0) {
            while (lo2 < hi2 && unique_[lo2].pattern->size() == d) {
              ResolveMatch(lo2, tree, child, matched);
              ++lo2;
            }
            if (lo2 == hi2) {
              alive = false;
              break;
            }
          }
          // Narrow to the patterns whose symbol at depth d matches the
          // label; the peeled-off edges of the range mismatched inside the
          // edge and have zero occurrences.
          const unsigned char x = static_cast<unsigned char>(buf[t]);
          auto sym_at = [&](std::size_t w) {
            return static_cast<unsigned char>((*unique_[w].pattern)[d]);
          };
          std::size_t nlo = lo2;
          std::size_t nhi = hi2;
          {
            std::size_t l = lo2, r = hi2;
            while (l < r) {
              const std::size_t m = l + (r - l) / 2;
              if (sym_at(m) < x) l = m + 1; else r = m;
            }
            nlo = l;
          }
          {
            std::size_t l = nlo, r = hi2;
            while (l < r) {
              const std::size_t m = l + (r - l) / 2;
              if (sym_at(m) <= x) l = m + 1; else r = m;
            }
            nhi = l;
          }
          for (std::size_t w = lo2; w < nlo; ++w) ResolveCount(w, 0);
          for (std::size_t w = nhi; w < hi2; ++w) ResolveCount(w, 0);
          lo2 = nlo;
          hi2 = nhi;
          if (lo2 == hi2) {
            alive = false;
            break;
          }
        }
        j += chunk;
      }
      if (alive) {
        // The whole label matched: the surviving sub-range continues below
        // `child` at the deeper frame.
        stack.push_back(Frame{child, f.depth + c.edge_len, lo2, hi2});
      }
      a = b;
    }
  }
  return Status::OK();
}

Status DictMatcher::ResolveLocates(const ServedSubTree& tree,
                                   const std::vector<MatchedSlot>& matched) {
  TraceSpan span(ctx_.trace, "collect");
  std::vector<uint32_t> slots(matched.size());
  for (std::size_t i = 0; i < matched.size(); ++i) slots[i] = matched[i].slot;
  std::vector<uint64_t> buffer;
  std::vector<LeafSlice> slices;
  ERA_RETURN_NOT_OK(tree.CollectLeafSlices(slots, &ctx_, &buffer, &slices));
  // The shared pass decodes each leaf once however many patterns need it;
  // the counter reflects the work actually done, not the per-pattern sum.
  session_->stats.leaves_enumerated += buffer.size();
  for (std::size_t i = 0; i < matched.size(); ++i) {
    UniquePattern& up = unique_[matched[i].unique];
    std::vector<uint64_t> hits(
        buffer.begin() + static_cast<std::ptrdiff_t>(slices[i].offset),
        buffer.begin() +
            static_cast<std::ptrdiff_t>(slices[i].offset + slices[i].count));
    // kSmallest semantics, identical to LocateWithSession: select the
    // smallest `limit`, then sort.
    if (hits.size() > options_.locate_limit) {
      std::nth_element(hits.begin(),
                       hits.begin() +
                           static_cast<std::ptrdiff_t>(options_.locate_limit),
                       hits.end());
      hits.resize(options_.locate_limit);
    }
    std::sort(hits.begin(), hits.end());
    for (std::size_t k = 0; k + 1 < up.items.size(); ++k) {
      (*outcomes_)[up.items[k]].offsets = hits;
    }
    (*outcomes_)[up.items.back()].offsets = std::move(hits);
    up.resolved = true;
  }
  return Status::OK();
}

Status DictMatcher::RunGroup(std::size_t lo, std::size_t hi) {
  ++session_->stats.dict_groups_formed;
  ERA_ASSIGN_OR_RETURN(
      auto tree,
      engine_->OpenSubTreeOrQuarantine(
          static_cast<uint32_t>(unique_[lo].subtree_id), session_, ctx_));
  std::vector<MatchedSlot> matched;
  ERA_RETURN_NOT_OK(Descend(*tree, lo, hi, &matched));
  if (options_.locate && !matched.empty()) {
    ERA_RETURN_NOT_OK(ResolveLocates(*tree, matched));
  }
  return Status::OK();
}

void DictMatcher::Run(const std::vector<std::string>& patterns,
                      std::vector<DictOutcome>* outcomes) {
  outcomes_ = outcomes;
  outcomes_->assign(patterns.size(), DictOutcome{});

  // Dedup + sort in one structure: map keys are views into `patterns`
  // (which outlives the call) and std::string_view compares with memcmp
  // semantics — the same unsigned order the builders sort siblings by, so
  // the unique set comes out aligned with tree child order.
  std::map<std::string_view, std::vector<std::size_t>> buckets;
  std::size_t non_empty = 0;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].empty()) {
      (*outcomes_)[i].status = Status::InvalidArgument("empty pattern");
      continue;
    }
    buckets[patterns[i]].push_back(i);
    ++non_empty;
  }
  session_->stats.batch_duplicates_folded += non_empty - buckets.size();

  unique_.clear();
  unique_.reserve(buckets.size());
  for (auto& [view, items] : buckets) {
    UniquePattern up;
    up.pattern = &patterns[items.front()];
    up.items = std::move(items);
    // One k-mer dispatch probe per unique pattern.
    PrefixTrie::DescendResult walk = engine_->index_.Route(*up.pattern);
    if (walk.pattern_exhausted) {
      up.kind = RouteKind::kTrie;
      up.trie_node = walk.node;
    } else {
      const PrefixTrie::Node& node = engine_->index_.trie().node(walk.node);
      if (node.subtree_id < 0) {
        up.kind = RouteKind::kMiss;
      } else {
        up.kind = RouteKind::kSubTree;
        up.subtree_id = node.subtree_id;
      }
    }
    unique_.push_back(std::move(up));
  }

  // Group boundary loop. `terminal` flips once on deadline/cancel and
  // stamps everything still unresolved, preserving the batch contract.
  Status terminal;
  std::size_t u = 0;
  while (u < unique_.size()) {
    if (!terminal.ok()) {
      StampUnresolved(u, terminal, /*counts_as_query=*/false);
      ++u;
      continue;
    }
    if (Status check = ctx_.Check(); !check.ok()) {
      terminal = check;
      engine_->admission_.RecordOutcome(terminal);
      continue;
    }
    UniquePattern& up = unique_[u];
    if (up.kind == RouteKind::kMiss) {
      ResolveCount(u, 0);
      ++u;
      continue;
    }
    if (up.kind == RouteKind::kTrie) {
      Status s = ResolveTrie(u);
      if (!s.ok()) {
        if (TerminatesDictionary(s)) {
          terminal = s;
          engine_->admission_.RecordOutcome(terminal);
          continue;  // stamped (with the rest) at the top of the loop
        }
        StampUnresolved(u, s, /*counts_as_query=*/true);
      }
      ++u;
      continue;
    }
    // Sub-tree group: the sorted order makes same-sub-tree patterns one
    // contiguous run (sub-tree trie paths are prefix-free).
    std::size_t v = u + 1;
    while (v < unique_.size() && unique_[v].kind == RouteKind::kSubTree &&
           unique_[v].subtree_id == up.subtree_id) {
      ++v;
    }
    Status s = RunGroup(u, v);
    if (!s.ok()) {
      const bool is_terminal = TerminatesDictionary(s);
      if (is_terminal) {
        terminal = s;
        engine_->admission_.RecordOutcome(terminal);
      }
      // A group-level failure (unavailable sub-tree, corruption, or the
      // terminal itself) lands on every pattern the descent had not yet
      // resolved; already-resolved patterns keep their answers.
      for (std::size_t w = u; w < v; ++w) {
        StampUnresolved(w, s, /*counts_as_query=*/!is_terminal);
      }
    }
    u = v;
  }
}

StatusOr<std::vector<DictOutcome>> QueryEngine::MatchDictionary(
    const std::vector<std::string>& patterns, const DictMatchOptions& options) {
  return MatchDictionary(QueryContext::Background(), patterns, options);
}

StatusOr<std::vector<DictOutcome>> QueryEngine::MatchDictionary(
    const QueryContext& ctx, const std::vector<std::string>& patterns,
    const DictMatchOptions& options) {
  auto trace = MaybeStartTrace("match_dictionary", ctx);
  if (trace == nullptr) return MatchDictionaryImpl(ctx, patterns, options);
  QueryContext traced = ctx;
  traced.trace = trace.get();
  return FinishTraced(trace, MatchDictionaryImpl(traced, patterns, options));
}

StatusOr<std::vector<DictOutcome>> QueryEngine::MatchDictionaryImpl(
    const QueryContext& ctx, const std::vector<std::string>& patterns,
    const DictMatchOptions& options) {
  Permit permit;
  {
    TraceSpan span(ctx.trace, "admission");
    ERA_RETURN_NOT_OK(admission_.Admit(ctx, &permit));
  }
  Lease lease;
  ERA_RETURN_NOT_OK(lease.Acquire(this));
  ReaderContextGuard guard(lease.get(), &ctx);
  std::vector<DictOutcome> outcomes;
  DictMatcher matcher(this, lease.get(), ctx, options);
  matcher.Run(patterns, &outcomes);
  return outcomes;
}

}  // namespace era
