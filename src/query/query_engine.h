// Query engine over a built TreeIndex: exact pattern search in O(|P|)
// symbol comparisons (the suffix tree's raison d'être, Section 1).
//
// A query routes through the index's k-mer dispatch table (one array probe
// replacing the pointer-trie walk) to the responsible sub-tree, loads it
// through the index's sharded LRU cache, and continues matching against edge
// labels resolved from the text through a buffered reader. Sub-trees are
// walked in their serving form (ServedSubTree): compressed v3 payloads are
// never inflated — child lookup is a binary search over the bit-packed,
// first-symbol-sorted child block, and Count reads the match node's stored
// subtree leaf count, so the O(|P|) bound holds with zero leaf enumeration
// for either format.
//
// The engine is thread-safe: any number of threads may issue queries
// concurrently. Each call leases a text-reader session from an internal pool
// (readers are pooled, never shared), the sub-tree cache is sharded, and
// per-session I/O and query counters are folded into the engine aggregates
// when the lease is returned.
//
// Overload control: every entry point has a QueryContext overload carrying
// an absolute deadline and a cancellation token, checked at node-visit and
// device-read boundaries (the context-free overloads run under
// QueryContext::Background()). All queries pass through an
// AdmissionController (query/admission.h) — disabled by default, so
// existing callers only gain the Drain() contract — and serving degradation
// is counted in ServingStats beside QueryStats.

#ifndef ERA_QUERY_QUERY_ENGINE_H_
#define ERA_QUERY_QUERY_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/status.h"
#include "io/string_reader.h"
#include "query/admission.h"
#include "suffixtree/tree_index.h"

namespace era {

/// Per-engine tracing knobs (see common/metrics.h for the trace layer).
struct QueryTraceOptions {
  /// Master switch. Off (default) keeps every trace pointer null: the whole
  /// span layer costs one pointer test per checkpoint.
  bool enabled = false;
  /// Trace every Nth top-level request (1 = all). Sampling is a per-engine
  /// round-robin counter, so a steady workload traces a steady fraction.
  uint64_t sample_every = 1;
  /// Ring capacities and the slow-query threshold.
  TraceRecorderOptions recorder;
};

/// Tuning for a serving engine.
struct QueryEngineOptions {
  /// Sub-tree cache budget and sharding (see TreeCacheOptions).
  TreeCacheOptions cache;
  /// Buffer of each pooled text reader.
  uint64_t reader_buffer_bytes = 64 << 10;
  /// Readers kept for reuse; excess sessions are dropped on release.
  std::size_t max_pooled_sessions = 64;
  /// Overload policy (disabled by default: everything admitted instantly,
  /// but Drain() still rejects new work while in-flight queries finish).
  AdmissionOptions admission;
  /// Registry the engine's counters live in; null means
  /// MetricsRegistry::Global(). Each engine registers its series under a
  /// unique {engine="N"} label, so a fresh engine always starts from zero.
  MetricsRegistry* registry = nullptr;
  /// When false the engine keeps the original plain-struct aggregation and
  /// registers nothing — the pre-registry hot path, kept so
  /// bench_query_qps can measure (and guard) the registry's overhead.
  bool metrics_enabled = true;
  /// Per-request tracing (off by default).
  QueryTraceOptions trace;
};

/// Aggregate query-path counters (device traffic is in IoStats; these count
/// tree work).
struct QueryStats {
  /// Completed Count/Locate/Contains calls (batch items count individually,
  /// except duplicates folded from an earlier identical item — those count
  /// only in batch_duplicates_folded).
  uint64_t queries = 0;
  /// Counts answered from the trie alone (no sub-tree open).
  uint64_t trie_resolved_counts = 0;
  /// Sub-tree nodes examined while matching (binary-search probes included).
  uint64_t nodes_visited = 0;
  /// Leaf records materialized (Locate only; Count never enumerates).
  uint64_t leaves_enumerated = 0;
  /// Queries answered Unavailable because their sub-tree could not be
  /// loaded (corrupt or unreadable after retries). The failure is per-query:
  /// patterns routed to healthy sub-trees keep succeeding.
  uint64_t unavailable_queries = 0;
  /// Batch items answered by copying the outcome of an identical earlier
  /// pattern in the same batch (no descent, no leaf work).
  uint64_t batch_duplicates_folded = 0;
  /// Same-sub-tree pattern groups formed by MatchDictionary (one sub-tree
  /// open and one range descent per group).
  uint64_t dict_groups_formed = 0;
  /// Tree edges walked once on behalf of a whole pattern range during a
  /// shared descent.
  uint64_t dict_descents_shared = 0;
  /// Edge walks avoided versus the per-pattern loop: for every shared edge,
  /// (patterns entering the edge - 1).
  uint64_t dict_descents_saved = 0;

  void Add(const QueryStats& other) {
    queries += other.queries;
    trie_resolved_counts += other.trie_resolved_counts;
    nodes_visited += other.nodes_visited;
    leaves_enumerated += other.leaves_enumerated;
    unavailable_queries += other.unavailable_queries;
    batch_duplicates_folded += other.batch_duplicates_folded;
    dict_groups_formed += other.dict_groups_formed;
    dict_descents_shared += other.dict_descents_shared;
    dict_descents_saved += other.dict_descents_saved;
  }
};

/// QueryStats field table for the metrics registry (the IoStatsFields
/// pattern; see io/io_stats.h).
struct QueryStatsField {
  const char* name;
  const char* help;
  uint64_t QueryStats::*member;
};
const std::vector<QueryStatsField>& QueryStatsFields();

/// Per-item result of a context-aware batch. A batch stops mid-flight on
/// deadline expiry or cancellation: items already answered keep their
/// results, the item that hit the boundary and everything after it carry
/// that terminal status. Non-fatal per-item failures (bad pattern, sub-tree
/// unavailable) do not stop the batch.
struct CountOutcome {
  Status status;
  uint64_t count = 0;
};
struct LocateOutcome {
  Status status;
  std::vector<uint64_t> offsets;
};

/// What a limited Locate promises about WHICH occurrences it returns.
enum class LocateOrder {
  /// The smallest `limit` offsets: every occurrence is enumerated, then a
  /// selection keeps the smallest. Deterministic, but the enumeration cost
  /// is proportional to the total occurrence count, not the limit.
  kSmallest,
  /// Any `limit` occurrences (still returned sorted): decoding stops after
  /// `limit` leaf slots, so a huge posting list costs O(limit) leaf decodes.
  /// Use when the caller needs *some* occurrences — existence samples,
  /// result-page seeds — rather than the smallest ones.
  kArbitrary,
};

/// Knobs for MatchDictionary.
struct DictMatchOptions {
  /// When true every matched pattern also gets its occurrence offsets
  /// (kSmallest semantics under locate_limit, like Locate). Leaf work is
  /// shared: one enumeration pass per touched sub-tree resolves every
  /// matched pattern routed there.
  bool locate = false;
  /// Per-pattern cap on returned offsets (locate mode only).
  std::size_t locate_limit = SIZE_MAX;
};

/// Per-pattern result of MatchDictionary. `count` is the full occurrence
/// count in both modes; `offsets` is filled only in locate mode (ascending,
/// at most locate_limit entries, smallest first). Per-item and terminal
/// statuses follow the CountOutcome batch contract.
struct DictOutcome {
  Status status;
  uint64_t count = 0;
  std::vector<uint64_t> offsets;
};

/// Read-side facade over an index directory.
class QueryEngine {
 public:
  /// Loads the manifest from `index_dir`, configures the sub-tree cache and
  /// opens the text file referenced by the manifest.
  static StatusOr<std::unique_ptr<QueryEngine>> Open(
      Env* env, const std::string& index_dir,
      const QueryEngineOptions& options = QueryEngineOptions{});

  ~QueryEngine();

  /// Number of occurrences of `pattern` in the text. O(|P|) — answered from
  /// trie frequencies or the match node's subtree leaf count.
  StatusOr<uint64_t> Count(const std::string& pattern);
  StatusOr<uint64_t> Count(const QueryContext& ctx, const std::string& pattern);

  /// Starting offsets of occurrences, ascending. With a `limit`, `order`
  /// picks the contract: kSmallest (default) collects every occurrence and
  /// keeps the smallest `limit`; kArbitrary stops decoding after `limit`
  /// leaf slots (see LocateOrder).
  StatusOr<std::vector<uint64_t>> Locate(
      const std::string& pattern, std::size_t limit = SIZE_MAX,
      LocateOrder order = LocateOrder::kSmallest);
  StatusOr<std::vector<uint64_t>> Locate(
      const QueryContext& ctx, const std::string& pattern,
      std::size_t limit = SIZE_MAX, LocateOrder order = LocateOrder::kSmallest);

  /// True iff `pattern` occurs at least once (via Count; no enumeration).
  StatusOr<bool> Contains(const std::string& pattern);
  StatusOr<bool> Contains(const QueryContext& ctx, const std::string& pattern);

  /// Batched variants: one leased reader session (and one admission permit)
  /// serves the whole batch. Identical patterns in a batch are answered
  /// once and the result fanned back out to every duplicate (counted in
  /// QueryStats::batch_duplicates_folded); items are still processed — and
  /// terminal statuses stamped — in their original order.
  StatusOr<std::vector<uint64_t>> CountBatch(
      const std::vector<std::string>& patterns);
  StatusOr<std::vector<std::vector<uint64_t>>> LocateBatch(
      const std::vector<std::string>& patterns, std::size_t limit = SIZE_MAX);

  /// Context-aware batches report per-item outcomes instead of aborting the
  /// whole batch on the first error (see CountOutcome). The outer status is
  /// only non-OK when the batch never ran (shed by admission, or no reader
  /// session).
  StatusOr<std::vector<CountOutcome>> CountBatch(
      const QueryContext& ctx, const std::vector<std::string>& patterns);
  StatusOr<std::vector<LocateOutcome>> LocateBatch(
      const QueryContext& ctx, const std::vector<std::string>& patterns,
      std::size_t limit = SIZE_MAX);

  /// Shared-descent dictionary matching: answers the whole pattern set in
  /// one batched pass. Patterns are deduplicated and sorted (memcmp order,
  /// which is also the tree's child order), grouped by target sub-tree, and
  /// each group descends the tree with a pattern-range cursor — every tree
  /// edge is walked at most once per distinct shared prefix, and each
  /// touched sub-tree is opened exactly once. Results are byte-identical to
  /// running the per-pattern Count/Locate loop. Outcomes are index-aligned
  /// with `patterns`; the outer status is only non-OK when the batch never
  /// ran (CountOutcome contract). Deadline/cancel checkpoints sit at group
  /// and node boundaries, and a terminal status stamps the item that hit
  /// the boundary plus everything unresolved after it.
  StatusOr<std::vector<DictOutcome>> MatchDictionary(
      const std::vector<std::string>& patterns,
      const DictMatchOptions& options = DictMatchOptions{});
  StatusOr<std::vector<DictOutcome>> MatchDictionary(
      const QueryContext& ctx, const std::vector<std::string>& patterns,
      const DictMatchOptions& options = DictMatchOptions{});

  const TreeIndex& index() const { return index_; }
  /// Snapshot of the accumulated I/O of retired sessions (sub-tree loads,
  /// cache traffic, label reads). Sessions still in flight report on
  /// release.
  IoStats io() const;
  /// Snapshot of the aggregate query counters.
  QueryStats stats() const;
  /// Snapshot of the sub-tree cache (hits/misses/evictions/residency).
  TreeIndex::CacheSnapshot cache() const { return index_.CacheStats(); }
  /// Sub-trees whose loads have failed, with failure counts — the serving
  /// blast radius of on-disk damage. Failed loads are never cached, so a
  /// repaired file starts serving again without a restart.
  std::map<uint32_t, uint64_t> quarantine() const;

  /// Snapshot of the serving-layer counters (admitted/queued/shed/...).
  ServingStats serving() const { return admission_.stats(); }
  /// Trace recorder when tracing is enabled in the options, else null.
  TraceRecorder* tracer() const { return tracer_.get(); }
  /// Graceful shutdown: sheds queued work, refuses new queries with
  /// ResourceExhausted (even through the context-free overloads), lets
  /// in-flight queries finish. Follow with admission().WaitIdle() to block
  /// until they have.
  void Drain() { admission_.Drain(); }
  void Resume() { admission_.Resume(); }
  /// The underlying controller (in_flight(), WaitIdle(), options()).
  AdmissionController& admission() { return admission_; }

 private:
  /// The shared-descent dictionary matcher (query/dict_matcher.cc) runs
  /// inside a leased session and shares the engine's private traversal
  /// helpers (FindChild, OpenSubTreeOrQuarantine, LocateWithSession).
  friend class DictMatcher;

  /// One pooled serving session: a private text reader plus the stat sinks
  /// it is bound to.
  struct Session {
    std::unique_ptr<StringReader> reader;
    IoStats io;
    QueryStats stats;
  };

  /// RAII over AcquireSession/ReleaseSession: folds the session's counters
  /// into the engine aggregates on every exit path.
  class Lease {
   public:
    Lease() = default;
    ~Lease();
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Status Acquire(QueryEngine* engine);
    Session* get() { return session_.get(); }

   private:
    QueryEngine* engine_ = nullptr;
    std::unique_ptr<Session> session_;
  };

  /// Scoped binding of a query's context to a leased session's reader, so
  /// every device read the session performs observes the caller's deadline.
  /// Declare AFTER the Lease: the binding must unwind before the session
  /// returns to the pool (a pooled reader must never point at a dead
  /// context).
  class ReaderContextGuard {
   public:
    ReaderContextGuard(Session* session, const QueryContext* ctx);
    ~ReaderContextGuard();
    ReaderContextGuard(const ReaderContextGuard&) = delete;
    ReaderContextGuard& operator=(const ReaderContextGuard&) = delete;

   private:
    Session* session_;
  };

  QueryEngine(Env* env, TreeIndex index, const QueryEngineOptions& options)
      : env_(env),
        index_(std::move(index)),
        options_(options),
        admission_(options.admission) {}

  /// Registers the engine's counter series and snapshot collector (cache,
  /// quarantine, in-flight) under a unique {engine="N"} label, and creates
  /// the trace recorder when tracing is enabled. Called once from Open.
  void InitObservability();

  /// Starts a sampled trace for one top-level request; null when tracing is
  /// off or the sampler skips this request.
  std::shared_ptr<Trace> MaybeStartTrace(const char* label,
                                         const QueryContext& ctx);
  /// Finishes `trace` (no-op when null) and passes `result` through.
  template <typename T>
  StatusOr<T> FinishTraced(const std::shared_ptr<Trace>& trace,
                           StatusOr<T> result) {
    if (trace != nullptr) {
      tracer_->FinishTrace(trace,
                           result.ok() ? Status::OK() : result.status());
    }
    return result;
  }

  StatusOr<std::unique_ptr<Session>> AcquireSession();
  void ReleaseSession(std::unique_ptr<Session> session);

  /// OpenSubTree with serving degradation: a failed load is recorded in the
  /// quarantine map and surfaced as Unavailable naming the sub-tree, so one
  /// damaged file fails its own queries instead of the process. A deadline
  /// or cancellation abandon is NOT the file's fault and passes through
  /// without quarantining.
  StatusOr<std::shared_ptr<const ServedSubTree>> OpenSubTreeOrQuarantine(
      uint32_t id, Session* session, const QueryContext& ctx);

  /// Bodies of the public context-aware entry points (admission → lease →
  /// per-session work). The public wrappers only add trace start/finish.
  StatusOr<uint64_t> CountImpl(const QueryContext& ctx,
                               const std::string& pattern);
  StatusOr<std::vector<uint64_t>> LocateImpl(const QueryContext& ctx,
                                             const std::string& pattern,
                                             std::size_t limit,
                                             LocateOrder order);
  StatusOr<std::vector<CountOutcome>> CountBatchImpl(
      const QueryContext& ctx, const std::vector<std::string>& patterns);
  StatusOr<std::vector<LocateOutcome>> LocateBatchImpl(
      const QueryContext& ctx, const std::vector<std::string>& patterns,
      std::size_t limit);
  StatusOr<std::vector<DictOutcome>> MatchDictionaryImpl(
      const QueryContext& ctx, const std::vector<std::string>& patterns,
      const DictMatchOptions& options);

  StatusOr<uint64_t> CountWithSession(Session* session,
                                      const QueryContext& ctx,
                                      const std::string& pattern);
  StatusOr<std::vector<uint64_t>> LocateWithSession(Session* session,
                                                    const QueryContext& ctx,
                                                    const std::string& pattern,
                                                    std::size_t limit,
                                                    LocateOrder order);

  /// Match outcome inside one sub-tree.
  struct SubTreeMatch {
    bool matched = false;
    uint32_t node = 0;  // node whose subtree holds all occurrences
  };
  StatusOr<SubTreeMatch> MatchInSubTree(const ServedSubTree& tree,
                                        const QueryContext& ctx,
                                        const std::string& pattern,
                                        Session* session);
  /// Child of `node` whose edge starts with `symbol` (binary search over the
  /// sorted child block; first symbols resolve through the session reader).
  /// kNilNode if absent.
  StatusOr<uint32_t> FindChild(const ServedSubTree& tree, uint32_t node,
                               char symbol, Session* session);

  Env* env_;
  TreeIndex index_;
  QueryEngineOptions options_;
  AdmissionController admission_;

  mutable std::mutex mu_;  // guards pool_ and the retired aggregates
  std::vector<std::unique_ptr<Session>> pool_;
  /// Plain-struct aggregates, used only when metrics are disabled (the
  /// pre-registry path bench_query_qps compares against).
  IoStats io_;
  QueryStats stats_;
  std::map<uint32_t, uint64_t> quarantine_;  // subtree id -> failed loads

  /// Registry wiring (null when options_.metrics_enabled is false).
  /// Counter vectors are index-aligned with IoStatsFields() /
  /// QueryStatsFields(): ReleaseSession folds a retired session into them,
  /// io()/stats() materialize the snapshot structs back out.
  struct RegistryHooks {
    MetricsRegistry* registry = nullptr;
    std::vector<std::shared_ptr<Counter>> io;
    std::vector<std::shared_ptr<Counter>> query;
    uint64_t collector_id = 0;
  };
  std::unique_ptr<RegistryHooks> metrics_;
  std::unique_ptr<TraceRecorder> tracer_;
  std::atomic<uint64_t> trace_tick_{0};  // sampling counter
};

/// Collects the leaf ids under `node` in DFS (lexicographic) order, up to
/// `limit` (test- and query-shared helper for linked trees).
void CollectLeaves(const TreeBuffer& tree, uint32_t node,
                   std::vector<uint64_t>* leaves, std::size_t limit);

/// Counted-layout collection: appends ALL leaf ids under `node` by linearly
/// scanning its contiguous descendant block (stops after the node's subtree
/// leaf count; not lexicographic — callers sort).
void CollectLeaves(const CountedTree& tree, uint32_t node,
                   std::vector<uint64_t>* leaves);

/// Context-aware counted-layout collection: same scan, but the context is
/// checked every few thousand slots so a huge enumeration (the expensive
/// tail of Locate) abandons promptly on deadline expiry or cancellation.
Status CollectLeaves(const CountedTree& tree, uint32_t node,
                     const QueryContext& ctx, std::vector<uint64_t>* leaves);

}  // namespace era

#endif  // ERA_QUERY_QUERY_ENGINE_H_
