// Query engine over a built TreeIndex: exact pattern search in O(|P|)
// symbol comparisons (the suffix tree's raison d'être, Section 1).
//
// A query walks the in-memory trie to the responsible sub-tree, loads it
// (cached), and continues matching against edge labels resolved from the
// text through a buffered reader.

#ifndef ERA_QUERY_QUERY_ENGINE_H_
#define ERA_QUERY_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/string_reader.h"
#include "suffixtree/tree_index.h"

namespace era {

/// Read-side facade over an index directory.
class QueryEngine {
 public:
  /// Loads the manifest from `index_dir` and opens the text file referenced
  /// by it.
  static StatusOr<std::unique_ptr<QueryEngine>> Open(
      Env* env, const std::string& index_dir);

  /// Number of occurrences of `pattern` in the text.
  StatusOr<uint64_t> Count(const std::string& pattern);

  /// Starting offsets of every occurrence (ascending), up to `limit`.
  StatusOr<std::vector<uint64_t>> Locate(const std::string& pattern,
                                         std::size_t limit = SIZE_MAX);

  /// True iff `pattern` occurs at least once.
  StatusOr<bool> Contains(const std::string& pattern);

  const TreeIndex& index() const { return index_; }
  /// Accumulated I/O of the query session (sub-tree loads + label reads).
  const IoStats& io() const { return io_; }

 private:
  QueryEngine(Env* env, TreeIndex index) : env_(env), index_(std::move(index)) {}

  /// Match outcome inside one sub-tree.
  struct SubTreeMatch {
    bool matched = false;
    uint32_t node = 0;  // node whose subtree holds all occurrences
  };
  StatusOr<SubTreeMatch> MatchInSubTree(const TreeBuffer& tree,
                                        const std::string& pattern);

  Env* env_;
  TreeIndex index_;
  std::unique_ptr<StringReader> text_reader_;
  IoStats io_;
};

/// Collects the leaf ids under `node` (test- and query-shared helper).
void CollectLeaves(const TreeBuffer& tree, uint32_t node,
                   std::vector<uint64_t>* leaves, std::size_t limit);

}  // namespace era

#endif  // ERA_QUERY_QUERY_ENGINE_H_
