#include "text/fasta.h"

#include <cctype>

namespace era {

StatusOr<std::vector<FastaRecord>> ReadFastaRecords(Env* env,
                                                    const std::string& path,
                                                    const Alphabet& alphabet,
                                                    FastaCleanPolicy policy) {
  std::string raw;
  ERA_RETURN_NOT_OK(env->ReadFileToString(path, &raw));

  std::vector<FastaRecord> records;
  bool in_header = false;
  for (char c : raw) {
    if (c == '>') {
      in_header = true;
      records.emplace_back();
      continue;
    }
    if (in_header) {
      if (c == '\n') {
        in_header = false;
      } else if (c != '\r') {
        records.back().header.push_back(c);
      }
      continue;
    }
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t') continue;
    if (records.empty()) {
      return Status::InvalidArgument("sequence data before any '>' header in " +
                                     path);
    }
    char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    // English alphabets are lowercase; try the original byte too.
    char use = alphabet.Contains(u) ? u : c;
    if (!alphabet.Contains(use)) {
      if (policy == FastaCleanPolicy::kStrict) {
        return Status::InvalidArgument(
            std::string("foreign byte in FASTA sequence: '") + c + "'");
      }
      continue;  // kSkip
    }
    records.back().sequence.push_back(use);
  }
  if (records.empty()) {
    return Status::InvalidArgument("no FASTA records in " + path);
  }
  // Trim trailing whitespace left by headers like "> name ".
  for (FastaRecord& record : records) {
    while (!record.header.empty() &&
           (record.header.back() == ' ' || record.header.back() == '\t')) {
      record.header.pop_back();
    }
    while (!record.header.empty() &&
           (record.header.front() == ' ' || record.header.front() == '\t')) {
      record.header.erase(record.header.begin());
    }
  }
  return records;
}

StatusOr<std::string> ReadFasta(Env* env, const std::string& path,
                                const Alphabet& alphabet,
                                FastaCleanPolicy policy) {
  ERA_ASSIGN_OR_RETURN(std::vector<FastaRecord> records,
                       ReadFastaRecords(env, path, alphabet, policy));
  std::string text;
  for (const FastaRecord& record : records) text += record.sequence;
  text.push_back(alphabet.terminal());
  return text;
}

Status WriteFasta(Env* env, const std::string& path, const std::string& header,
                  const std::string& text, std::size_t line_width) {
  if (line_width == 0) return Status::InvalidArgument("line_width must be > 0");
  ERA_ASSIGN_OR_RETURN(auto file, env->NewWritable(path));
  ERA_RETURN_NOT_OK(file->Append(">" + header + "\n"));
  std::size_t body = text.size();
  if (body > 0 && text.back() == kTerminal) --body;
  for (std::size_t i = 0; i < body; i += line_width) {
    std::size_t n = std::min(line_width, body - i);
    ERA_RETURN_NOT_OK(file->Append(text.data() + i, n));
    ERA_RETURN_NOT_OK(file->Append("\n", 1));
  }
  return file->Close();
}

}  // namespace era
