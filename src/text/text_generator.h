// Seeded synthetic text generators.
//
// The paper evaluates on the human genome, concatenated DNA, UniProt protein
// and Wikipedia English. Those corpora are not redistributable here, so the
// benchmarks use synthetic equivalents with the properties that drive
// suffix-tree construction cost: alphabet size, symbol distribution skew, and
// repeat structure (long repeats determine tree depth / |LP|). See DESIGN.md
// §4 for the substitution rationale.

#ifndef ERA_TEXT_TEXT_GENERATOR_H_
#define ERA_TEXT_TEXT_GENERATOR_H_

#include <cstdint>
#include <string>

#include "alphabet/alphabet.h"

namespace era {

/// Tuning knobs for synthetic text.
struct GeneratorOptions {
  /// Probability, per emitted position, of starting a copy of an earlier
  /// segment instead of sampling fresh symbols. Repeats are what give real
  /// genomes deep suffix trees.
  double repeat_rate = 0.01;
  /// Mean length of an injected repeat (geometric).
  double mean_repeat_length = 200.0;
  /// Zipf skew for symbol frequencies (0 = uniform).
  double zipf_skew = 0.0;
  /// Order-1 Markov correlation strength in [0,1): probability mass pulled
  /// toward repeating the previous symbol's row.
  double markov_strength = 0.3;
};

/// Generates `length` body symbols over `alphabet` and appends the terminal.
/// Deterministic in (alphabet, length, seed, options).
std::string GenerateText(const Alphabet& alphabet, uint64_t length,
                         uint64_t seed, const GeneratorOptions& options);

/// DNA-flavored defaults (moderate repeats, Markov structure) — stands in for
/// genome/DNA datasets.
std::string GenerateDna(uint64_t length, uint64_t seed);

/// Protein-flavored defaults (20 symbols, skewed frequencies, fewer repeats).
std::string GenerateProtein(uint64_t length, uint64_t seed);

/// English-flavored text: Zipf-sampled words from an embedded vocabulary,
/// letters only (the paper's English set has |Σ| = 26).
std::string GenerateEnglish(uint64_t length, uint64_t seed);

}  // namespace era

#endif  // ERA_TEXT_TEXT_GENERATOR_H_
