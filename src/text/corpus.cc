#include "text/corpus.h"

#include "text/text_generator.h"

namespace era {

Alphabet AlphabetFor(CorpusKind kind) {
  switch (kind) {
    case CorpusKind::kDna:
      return Alphabet::Dna();
    case CorpusKind::kProtein:
      return Alphabet::Protein();
    case CorpusKind::kEnglish:
      return Alphabet::English();
  }
  return Alphabet::Dna();
}

const char* CorpusName(CorpusKind kind) {
  switch (kind) {
    case CorpusKind::kDna:
      return "DNA";
    case CorpusKind::kProtein:
      return "Protein";
    case CorpusKind::kEnglish:
      return "English";
  }
  return "?";
}

StatusOr<TextInfo> MaterializeCorpus(Env* env, const std::string& path,
                                     CorpusKind kind, uint64_t body_length,
                                     uint64_t seed) {
  TextInfo info;
  info.path = path;
  info.length = body_length + 1;
  info.alphabet = AlphabetFor(kind);

  if (env->FileExists(path)) {
    auto size = env->FileSize(path);
    if (size.ok() && *size == info.length) return info;
  }

  std::string text;
  switch (kind) {
    case CorpusKind::kDna:
      text = GenerateDna(body_length, seed);
      break;
    case CorpusKind::kProtein:
      text = GenerateProtein(body_length, seed);
      break;
    case CorpusKind::kEnglish:
      text = GenerateEnglish(body_length, seed);
      break;
  }
  ERA_RETURN_NOT_OK(env->WriteFile(path, text));
  return info;
}

StatusOr<TextInfo> MaterializeText(Env* env, const std::string& path,
                                   const Alphabet& alphabet,
                                   const std::string& text) {
  ERA_RETURN_NOT_OK(alphabet.ValidateText(text));
  ERA_RETURN_NOT_OK(env->WriteFile(path, text));
  TextInfo info;
  info.path = path;
  info.length = text.size();
  info.alphabet = alphabet;
  return info;
}

}  // namespace era
