// Multi-pattern matching automaton (Aho-Corasick).
//
// Vertical partitioning (frequency counting of the working set) and the
// occurrence scans that seed L for each sub-tree both need every match of a
// set of S-prefixes in one sequential pass over S. The automaton is built
// per working set / per virtual tree; its size is the total pattern length,
// a few KB in practice.

#ifndef ERA_TEXT_AHO_CORASICK_H_
#define ERA_TEXT_AHO_CORASICK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/string_reader.h"

namespace era {

/// Matcher for a fixed set of patterns over byte strings. Patterns must be
/// non-empty. Matches are reported as (pattern_id, start_position).
class AhoCorasick {
 public:
  /// Builds the automaton. Duplicate patterns are allowed (both ids fire).
  static StatusOr<AhoCorasick> Build(const std::vector<std::string>& patterns);

  /// Feeds one byte; invokes `emit(pattern_id, start_pos)` for every pattern
  /// ending at this byte. `pos` is the global position of `c`.
  template <typename Emit>
  void Step(char c, uint64_t pos, Emit&& emit) {
    unsigned char byte = static_cast<unsigned char>(c);
    while (state_ != 0 && nodes_[state_].next[byte] == kNoTransition) {
      state_ = nodes_[state_].fail;
    }
    int32_t next = nodes_[state_].next[byte];
    state_ = next == kNoTransition ? 0 : next;
    for (int32_t s = state_; s != 0; s = nodes_[s].output_link) {
      for (int32_t id : nodes_[s].matches) {
        emit(id, pos + 1 - patterns_[static_cast<std::size_t>(id)].size());
      }
      if (nodes_[s].output_link == 0 && nodes_[s].matches.empty()) break;
    }
  }

  /// Resets the automaton to the root state (start of a new scan).
  void Reset() { state_ = 0; }

  /// Streams the whole file through the automaton (one sequential scan).
  Status ScanAll(StringReader* reader,
                 const std::function<void(int32_t, uint64_t)>& emit);

  std::size_t num_patterns() const { return patterns_.size(); }
  const std::string& pattern(int32_t id) const {
    return patterns_[static_cast<std::size_t>(id)];
  }

 private:
  static constexpr int32_t kNoTransition = -1;

  struct Node {
    std::vector<int32_t> next;  // 256-wide transition row
    int32_t fail = 0;
    int32_t output_link = 0;     // nearest suffix state with matches
    std::vector<int32_t> matches;
  };

  std::vector<Node> nodes_;
  std::vector<std::string> patterns_;
  int32_t state_ = 0;
};

}  // namespace era

#endif  // ERA_TEXT_AHO_CORASICK_H_
