// Corpus catalog: materializes benchmark datasets as files under an Env and
// describes them (path, length, alphabet).

#ifndef ERA_TEXT_CORPUS_H_
#define ERA_TEXT_CORPUS_H_

#include <cstdint>
#include <string>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "io/env.h"

namespace era {

/// Families of synthetic datasets mirroring the paper's corpora.
enum class CorpusKind {
  kDna,      // 4 symbols, genome-like repeats (stands in for HG18 / DNA)
  kProtein,  // 20 symbols (stands in for UniProt)
  kEnglish,  // 26 symbols (stands in for Wikipedia text)
};

/// A materialized text: where it lives and what it contains. `length` counts
/// the terminal byte, i.e. it equals n+1 in the paper's notation.
struct TextInfo {
  std::string path;
  uint64_t length = 0;
  Alphabet alphabet = Alphabet::Dna();
};

/// Alphabet used by a corpus kind.
Alphabet AlphabetFor(CorpusKind kind);
const char* CorpusName(CorpusKind kind);

/// Generates a text of `body_length` symbols (terminal appended) with the
/// given seed and writes it to `path` under `env`. Regenerating with the same
/// arguments is deterministic. Skips generation if the file already exists
/// with the expected size (cheap caching for benchmark sweeps).
StatusOr<TextInfo> MaterializeCorpus(Env* env, const std::string& path,
                                     CorpusKind kind, uint64_t body_length,
                                     uint64_t seed);

/// Writes an arbitrary in-memory text (must already end with the terminal).
StatusOr<TextInfo> MaterializeText(Env* env, const std::string& path,
                                   const Alphabet& alphabet,
                                   const std::string& text);

}  // namespace era

#endif  // ERA_TEXT_CORPUS_H_
