#include "text/aho_corasick.h"

#include <deque>

namespace era {

StatusOr<AhoCorasick> AhoCorasick::Build(
    const std::vector<std::string>& patterns) {
  AhoCorasick ac;
  ac.patterns_ = patterns;
  ac.nodes_.emplace_back();
  ac.nodes_[0].next.assign(256, kNoTransition);

  for (std::size_t id = 0; id < patterns.size(); ++id) {
    const std::string& p = patterns[id];
    if (p.empty()) return Status::InvalidArgument("empty pattern");
    int32_t cur = 0;
    for (char c : p) {
      unsigned char byte = static_cast<unsigned char>(c);
      if (ac.nodes_[static_cast<std::size_t>(cur)].next[byte] ==
          kNoTransition) {
        ac.nodes_.emplace_back();
        ac.nodes_.back().next.assign(256, kNoTransition);
        ac.nodes_[static_cast<std::size_t>(cur)].next[byte] =
            static_cast<int32_t>(ac.nodes_.size() - 1);
      }
      cur = ac.nodes_[static_cast<std::size_t>(cur)].next[byte];
    }
    ac.nodes_[static_cast<std::size_t>(cur)].matches.push_back(
        static_cast<int32_t>(id));
  }

  // BFS to set failure and output links.
  std::deque<int32_t> queue;
  for (int b = 0; b < 256; ++b) {
    int32_t child = ac.nodes_[0].next[b];
    if (child != kNoTransition) queue.push_back(child);
  }
  while (!queue.empty()) {
    int32_t u = queue.front();
    queue.pop_front();
    Node& node = ac.nodes_[static_cast<std::size_t>(u)];
    for (int b = 0; b < 256; ++b) {
      int32_t child = node.next[b];
      if (child == kNoTransition) continue;
      int32_t f = node.fail;
      while (f != 0 &&
             ac.nodes_[static_cast<std::size_t>(f)].next[b] == kNoTransition) {
        f = ac.nodes_[static_cast<std::size_t>(f)].fail;
      }
      int32_t target = ac.nodes_[static_cast<std::size_t>(f)].next[b];
      if (target != kNoTransition && target != child) {
        ac.nodes_[static_cast<std::size_t>(child)].fail = target;
      } else {
        ac.nodes_[static_cast<std::size_t>(child)].fail = 0;
      }
      Node& child_node = ac.nodes_[static_cast<std::size_t>(child)];
      int32_t cf = child_node.fail;
      const Node& fail_node = ac.nodes_[static_cast<std::size_t>(cf)];
      child_node.output_link =
          fail_node.matches.empty() ? fail_node.output_link : cf;
      queue.push_back(child);
    }
  }
  return ac;
}

Status AhoCorasick::ScanAll(
    StringReader* reader, const std::function<void(int32_t, uint64_t)>& emit) {
  Reset();
  reader->BeginScan();
  const uint32_t kChunk = 64 << 10;
  std::vector<char> chunk(kChunk);
  uint64_t pos = 0;
  const uint64_t size = reader->size();
  while (pos < size) {
    uint32_t got = 0;
    ERA_RETURN_NOT_OK(reader->Fetch(pos, kChunk, chunk.data(), &got));
    if (got == 0) break;
    for (uint32_t i = 0; i < got; ++i) {
      Step(chunk[i], pos + i, emit);
    }
    pos += got;
  }
  return Status::OK();
}

}  // namespace era
