// FASTA import/export, so real genome files (e.g. HG18) can be indexed when
// available locally.

#ifndef ERA_TEXT_FASTA_H_
#define ERA_TEXT_FASTA_H_

#include <string>
#include <vector>

#include "alphabet/alphabet.h"
#include "common/status.h"
#include "io/env.h"

namespace era {

/// How to treat bytes outside the target alphabet (e.g. 'N' runs in genomes).
enum class FastaCleanPolicy {
  /// Drop them from the concatenated sequence (paper-style preprocessing).
  kSkip,
  /// Fail with InvalidArgument.
  kStrict,
};

/// One FASTA record: the header line (text after '>', trimmed) and its
/// cleaned sequence (no terminal appended).
struct FastaRecord {
  std::string header;
  std::string sequence;
};

/// Reads a multi-record FASTA file from `env` into per-record (header,
/// sequence) pairs — the document-collection ingestion path. Symbols are
/// uppercased where the alphabet expects it and `policy` is applied to
/// foreign bytes. Fails if the file holds no records.
StatusOr<std::vector<FastaRecord>> ReadFastaRecords(Env* env,
                                                    const std::string& path,
                                                    const Alphabet& alphabet,
                                                    FastaCleanPolicy policy);

/// Reads a (multi-record) FASTA file from `env`, concatenates the sequence
/// data of all records, uppercases symbols, applies `policy` to foreign
/// bytes, appends the terminal, and returns the text. (The flattening
/// wrapper over ReadFastaRecords; single-string indexing keeps using it.)
StatusOr<std::string> ReadFasta(Env* env, const std::string& path,
                                const Alphabet& alphabet,
                                FastaCleanPolicy policy);

/// Writes `text` (terminal stripped) as a single-record FASTA file with
/// `line_width`-column wrapping.
Status WriteFasta(Env* env, const std::string& path, const std::string& header,
                  const std::string& text, std::size_t line_width = 70);

}  // namespace era

#endif  // ERA_TEXT_FASTA_H_
