#include "text/text_generator.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace era {

namespace {

// Small embedded vocabulary for English-like text (letters only).
const char* const kWords[] = {
    "the",     "of",      "and",    "to",     "in",      "is",     "was",
    "for",     "that",    "with",   "on",     "as",      "are",    "be",
    "this",    "by",      "from",   "at",     "his",     "it",     "an",
    "were",    "which",   "have",   "or",     "had",     "not",    "but",
    "one",     "their",   "also",   "has",    "first",   "new",    "they",
    "who",     "after",   "its",    "been",   "other",   "when",   "during",
    "all",     "into",    "there",  "time",   "more",    "two",    "school",
    "may",     "years",   "over",   "only",   "city",    "some",   "world",
    "where",   "later",   "state",  "between", "national", "used",  "most",
    "made",    "then",    "about",  "known",  "these",   "family", "year",
    "while",   "would",   "team",   "season", "american", "series", "became",
    "against", "can",     "early",  "part",   "being",   "under",  "both",
    "however", "began",   "him",    "her",    "many",    "people", "area",
    "work",    "music",   "history", "life",  "university", "game", "called",
    "south",   "north",   "included", "second", "three", "company", "film",
    "number",  "album",   "following", "war",  "until",  "since",  "such",
    "born",    "released", "played", "found", "house",   "station", "before",
    "through", "several", "four",   "although", "name",  "village", "district",
    "county",  "within",  "former", "church", "located", "league", "well",
    "best",    "group",   "band",   "club",   "each",    "member", "water",
};
constexpr std::size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::vector<double> ZipfWeights(std::size_t n, double skew) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = skew == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(i + 1), skew);
  }
  return w;
}

}  // namespace

std::string GenerateText(const Alphabet& alphabet, uint64_t length,
                         uint64_t seed, const GeneratorOptions& options) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  const int k = alphabet.size();
  auto base = ZipfWeights(static_cast<std::size_t>(k), options.zipf_skew);

  // Order-1 Markov rows: each row is the base distribution with extra mass on
  // a row-specific "preferred" set, so transition structure is nontrivial.
  std::vector<std::discrete_distribution<int>> rows;
  rows.reserve(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    std::vector<double> w = base;
    if (options.markov_strength > 0.0) {
      double total = 0.0;
      for (double v : w) total += v;
      // Push mass toward a deterministic pseudo-random pair of successors.
      std::size_t a = static_cast<std::size_t>((r * 7 + 3) % k);
      std::size_t b = static_cast<std::size_t>((r * 13 + 5) % k);
      w[a] += total * options.markov_strength;
      w[b] += total * options.markov_strength * 0.5;
    }
    rows.emplace_back(w.begin(), w.end());
  }

  std::string text;
  text.reserve(length + 1);
  int prev = 0;
  std::geometric_distribution<uint64_t> repeat_len(
      1.0 / std::max(1.0, options.mean_repeat_length));

  while (text.size() < length) {
    if (options.repeat_rate > 0.0 && text.size() > 64 &&
        coin(rng) < options.repeat_rate) {
      // Copy an earlier segment (creates a long repeated substring).
      uint64_t len = std::min<uint64_t>(repeat_len(rng) + 8,
                                        length - text.size());
      std::uniform_int_distribution<uint64_t> src_dist(
          0, text.size() - std::min<uint64_t>(text.size(), len) );
      uint64_t src = src_dist(rng);
      uint64_t avail = std::min<uint64_t>(len, text.size() - src);
      // append may reallocate; copy via index loop to allow overlap.
      for (uint64_t i = 0; i < avail && text.size() < length; ++i) {
        text.push_back(text[src + i]);
      }
      if (!text.empty()) prev = alphabet.Code(text.back());
      continue;
    }
    int code = rows[static_cast<std::size_t>(prev)](rng);
    text.push_back(alphabet.Symbol(code));
    prev = code;
  }
  text.push_back(alphabet.terminal());
  return text;
}

std::string GenerateDna(uint64_t length, uint64_t seed) {
  GeneratorOptions options;
  // Copies cover ~#(rate*mean) of every (rate*mean + 1-rate) emitted
  // symbols: ~23% repeat-derived text, genome-like without degenerating
  // into copies-of-copies.
  options.repeat_rate = 0.001;
  options.mean_repeat_length = 300.0;
  options.zipf_skew = 0.0;
  options.markov_strength = 0.35;
  return GenerateText(Alphabet::Dna(), length, seed, options);
}

std::string GenerateProtein(uint64_t length, uint64_t seed) {
  GeneratorOptions options;
  options.repeat_rate = 0.0005;
  options.mean_repeat_length = 60.0;
  options.zipf_skew = 0.6;
  options.markov_strength = 0.15;
  return GenerateText(Alphabet::Protein(), length, seed, options);
}

std::string GenerateEnglish(uint64_t length, uint64_t seed) {
  std::mt19937_64 rng(seed * 0xA24BAED4963EE407ull + 7);
  auto weights = ZipfWeights(kNumWords, 1.0);
  std::discrete_distribution<std::size_t> words(weights.begin(),
                                                weights.end());
  std::string text;
  text.reserve(length + 1);
  while (text.size() < length) {
    const char* w = kWords[words(rng)];
    for (const char* p = w; *p != '\0' && text.size() < length; ++p) {
      text.push_back(*p);
    }
  }
  text.push_back(kTerminal);
  return text;
}

}  // namespace era
