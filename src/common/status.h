// Status and StatusOr: exception-free error propagation for the ERA library.
//
// The library follows the RocksDB/Arrow convention: fallible operations return
// a Status (or StatusOr<T> when they also produce a value), and callers are
// expected to check it. No exceptions are thrown by library code.

#ifndef ERA_COMMON_STATUS_H_
#define ERA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace era {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kNotSupported,
    kOutOfBudget,
    kInternal,
    kUnavailable,
    kDeadlineExceeded,
    kCancelled,
    kResourceExhausted,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  /// The requested operation would exceed the configured memory budget.
  static Status OutOfBudget(std::string msg) {
    return Status(Code::kOutOfBudget, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// A dependency (typically a stored artifact) is temporarily or permanently
  /// unreadable; the request failed but the service as a whole is healthy.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// The caller's absolute deadline passed before the operation completed.
  /// Partial work (if any) was abandoned at a read or node boundary.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// The caller's cancellation token fired; the operation stopped early.
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  /// The serving layer refused the request to protect itself (admission
  /// queue full, or draining). The request was shed before consuming any
  /// query capacity; retry against another replica or after backoff.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfBudget() const { return code_ == Code::kOutOfBudget; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, e.g. "IOError: open failed".
  std::string ToString() const;

  /// Same code with "context: message" — use to name the operation and path
  /// an error bubbled out of. OK statuses pass through unchanged.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A Status or a value of type T. Dereferencing a non-OK StatusOr asserts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use StatusOr(T) for OK results");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace era

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status.
#define ERA_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::era::Status _s = (expr);              \
    if (!_s.ok()) return _s;                \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors and otherwise binding
/// the value to `lhs`.
#define ERA_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto ERA_CONCAT_(_sor_, __LINE__) = (expr);            \
  if (!ERA_CONCAT_(_sor_, __LINE__).ok())                \
    return ERA_CONCAT_(_sor_, __LINE__).status();        \
  lhs = std::move(ERA_CONCAT_(_sor_, __LINE__)).value()

#define ERA_CONCAT_(a, b) ERA_CONCAT_IMPL_(a, b)
#define ERA_CONCAT_IMPL_(a, b) a##b

#endif  // ERA_COMMON_STATUS_H_
