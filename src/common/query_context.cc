#include "common/query_context.h"

#include <limits>

namespace era {

QueryContext QueryContext::WithTimeout(double seconds) {
  return WithDeadline(Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(seconds)));
}

QueryContext QueryContext::WithDeadline(Clock::time_point deadline) {
  QueryContext context;
  context.deadline = deadline;
  return context;
}

const QueryContext& QueryContext::Background() {
  static const QueryContext* background = new QueryContext();
  return *background;
}

double QueryContext::RemainingSeconds() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

Status QueryContext::Check() const {
  if (cancelled()) return Status::Cancelled("query cancelled");
  if (expired()) return Status::DeadlineExceeded("query deadline exceeded");
  return Status::OK();
}

}  // namespace era
