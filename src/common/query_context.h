// Per-request deadline and cancellation, threaded through the serving path.
//
// A QueryContext travels with one request (or one batch) from the public
// QueryEngine/DocEngine entry points down to the device-read boundaries
// (StringReader refills, TileCache loads, TreeIndex sub-tree opens) and the
// node-visit loops of the tree descent. The contract is cooperative and
// boundary-checked: a query observes cancellation or deadline expiry at the
// next node visit or device read — never mid-node, and an in-flight device
// request is always allowed to finish — so partial work is abandoned at a
// consistent point and the engine stays reusable.
//
// The deadline is ABSOLUTE (a steady_clock instant, immune to wall-clock
// jumps): retries, queue waits and multi-item batches all burn the same
// budget, which is what lets RetryPolicy promise it never sleeps past the
// caller's deadline. The cancellation token is shareable: copies observe the
// same state, so a client thread can cancel a batch another thread is
// running.
//
// Lives in common/ because both the io/ layer (readers, caches) and the
// query/ layer consume it.

#ifndef ERA_COMMON_QUERY_CONTEXT_H_
#define ERA_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace era {

struct Trace;

/// Shareable cancellation flag. Copies alias the same state; Cancel() on any
/// copy is observed by all of them. Thread-safe.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { state_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Deadline + cancellation + client identity for one request. Cheap to copy;
/// pass by const reference down the call tree. A default-constructed context
/// never expires and is never cancelled (use Background() to avoid even the
/// token allocation on context-free fast paths).
struct QueryContext {
  using Clock = std::chrono::steady_clock;

  /// Absolute expiry instant; time_point::max() means no deadline.
  Clock::time_point deadline = Clock::time_point::max();
  /// Cooperative cancellation, checked at the same boundaries as the
  /// deadline. Cancellation wins over expiry when both hold.
  CancellationToken cancel;
  /// Fairness key for admission control: the bounded wait queue is served
  /// round-robin across client ids, so one flooding client cannot starve
  /// the others (see query/admission.h).
  uint64_t client_id = 0;
  /// Per-request trace (common/metrics.h), recorded at the same cooperative
  /// checkpoints the deadline is checked at. Null (the default) means the
  /// request is untraced and every span is a no-op; when the engine samples
  /// a request for tracing it passes a copy of the caller's context with
  /// this set. Borrowed — the trace outlives the request via its recorder.
  Trace* trace = nullptr;

  /// Context expiring `seconds` from now.
  static QueryContext WithTimeout(double seconds);
  /// Context expiring at the given absolute instant.
  static QueryContext WithDeadline(Clock::time_point deadline);
  /// Shared no-deadline, never-cancelled context for the context-free API
  /// overloads. Do not Cancel() it.
  static const QueryContext& Background();

  bool has_deadline() const { return deadline != Clock::time_point::max(); }
  bool cancelled() const { return cancel.cancelled(); }
  bool expired(Clock::time_point now) const {
    return has_deadline() && now >= deadline;
  }
  bool expired() const { return has_deadline() && Clock::now() >= deadline; }

  /// Seconds until the deadline (negative once expired); +infinity when no
  /// deadline is set.
  double RemainingSeconds() const;

  /// The boundary check: Cancelled if the token fired, DeadlineExceeded if
  /// the deadline passed, OK otherwise. Costs one relaxed atomic load, plus
  /// one clock read when a deadline is set.
  Status Check() const;
};

}  // namespace era

#endif  // ERA_COMMON_QUERY_CONTEXT_H_
