#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ERA_CRC32_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define ERA_CRC32_ARM 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace era {

namespace {

std::array<uint32_t, 256> MakeTable(uint32_t poly) {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? poly ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Raw (pre/post-conditioning already applied by the caller) table kernel.
uint32_t TableKernel(const std::array<uint32_t, 256>& table,
                     const unsigned char* p, std::size_t n, uint32_t c) {
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

#if defined(ERA_CRC32_X86)

__attribute__((target("sse4.2"))) uint32_t Crc32cKernelHw(
    const unsigned char* p, std::size_t n, uint32_t c) {
  uint64_t c64 = c;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c64 = _mm_crc32_u64(c64, chunk);
    p += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(c64);
  while (n > 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  return c;
}

bool DetectCrc32cHardware() { return __builtin_cpu_supports("sse4.2"); }

#elif defined(ERA_CRC32_ARM)

__attribute__((target("+crc"))) uint32_t Crc32cKernelHw(const unsigned char* p,
                                                        std::size_t n,
                                                        uint32_t c) {
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c = __crc32cd(c, chunk);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  return c;
}

bool DetectCrc32cHardware() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return false;
#endif
}

#else

bool DetectCrc32cHardware() { return false; }

#endif

}  // namespace

uint32_t Crc32(const void* data, std::size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeTable(0xEDB88320u);
  const auto* p = static_cast<const unsigned char*>(data);
  return TableKernel(table, p, n, seed ^ 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

uint32_t Crc32cSoftware(const void* data, std::size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeTable(0x82F63B78u);
  const auto* p = static_cast<const unsigned char*>(data);
  return TableKernel(table, p, n, seed ^ 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
}

bool Crc32cHardwareAvailable() {
  static const bool available = DetectCrc32cHardware();
  return available;
}

uint32_t Crc32c(const void* data, std::size_t n, uint32_t seed) {
#if defined(ERA_CRC32_X86) || defined(ERA_CRC32_ARM)
  if (Crc32cHardwareAvailable()) {
    const auto* p = static_cast<const unsigned char*>(data);
    return Crc32cKernelHw(p, n, seed ^ 0xFFFFFFFFu) ^ 0xFFFFFFFFu;
  }
#endif
  return Crc32cSoftware(data, n, seed);
}

}  // namespace era
