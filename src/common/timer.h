// Wall-clock timing helper used by builders and benchmarks.

#ifndef ERA_COMMON_TIMER_H_
#define ERA_COMMON_TIMER_H_

#include <chrono>

namespace era {

/// Measures elapsed wall-clock time in seconds since construction or the last
/// Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / Restart.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace era

#endif  // ERA_COMMON_TIMER_H_
