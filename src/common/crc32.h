// Checksums guarding serialized sub-trees.
//
// Two polynomials live here:
//   * Crc32  — CRC-32 (IEEE, 0xEDB88320 reflected), software table kernel.
//     Format-v1 sub-tree files were written with it, so it stays for
//     verifying legacy indexes.
//   * Crc32c — CRC-32C (Castagnoli, 0x82F63B78 reflected). This is the
//     polynomial the SSE4.2 and ARMv8 CRC instructions implement, so the
//     dispatched kernel runs at bus speed on both architectures; a table
//     kernel covers everything else. Format-v2 files (the serving format)
//     checksum with it, which matters because the CRC is paid on every
//     sub-tree read and write.
//
// Dispatch happens once per process (CPUID on x86-64, HWCAP on aarch64) and
// is branch-free afterwards. Crc32cSoftware is exposed so tests can pin the
// hardware kernel byte-for-byte against the table kernel.

#ifndef ERA_COMMON_CRC32_H_
#define ERA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace era {

/// Computes CRC-32 (IEEE polynomial) of `data[0, n)`. `seed` allows chaining.
uint32_t Crc32(const void* data, std::size_t n, uint32_t seed = 0);

/// Computes CRC-32C (Castagnoli polynomial) of `data[0, n)`, using the
/// hardware CRC instructions when the CPU has them. `seed` allows chaining.
uint32_t Crc32c(const void* data, std::size_t n, uint32_t seed = 0);

/// The table-driven CRC-32C kernel, regardless of hardware support (the
/// reference the dispatched path must match byte-for-byte).
uint32_t Crc32cSoftware(const void* data, std::size_t n, uint32_t seed = 0);

/// True if Crc32c dispatches to a hardware kernel on this machine.
bool Crc32cHardwareAvailable();

}  // namespace era

#endif  // ERA_COMMON_CRC32_H_
