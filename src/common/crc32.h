// CRC-32 (IEEE) used to detect corruption in serialized sub-trees.

#ifndef ERA_COMMON_CRC32_H_
#define ERA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace era {

/// Computes CRC-32 (IEEE polynomial) of `data[0, n)`. `seed` allows chaining.
uint32_t Crc32(const void* data, std::size_t n, uint32_t seed = 0);

}  // namespace era

#endif  // ERA_COMMON_CRC32_H_
