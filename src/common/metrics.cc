#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace era {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Minimal-surprise number formatting shared by both exporters: integers
/// print without a fractional part (counters stay grep-able), everything
/// else gets enough digits to round-trip.
std::string FormatValue(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// JSON numbers may not be Inf/NaN; clamp to null per common practice.
std::string JsonNumber(double value) {
  if (std::isinf(value) || std::isnan(value)) return "null";
  return FormatValue(value);
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

unsigned Counter::ShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

uint64_t Gauge::Pack(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double Gauge::Unpack(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(observed, Pack(Unpack(observed) + delta),
                                      std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::vector<double> Histogram::LogBuckets(double min, double max,
                                          double factor) {
  std::vector<double> bounds;
  for (double b = min; b < max * (1 + 1e-12); b *= factor) {
    bounds.push_back(b);
  }
  bounds.push_back(kInf);
  return bounds;
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return LogBuckets(1e-6, 16.0, 2.0);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBounds();
  if (bounds_.back() != kInf) bounds_.push_back(kInf);
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::BucketFor(double value) const {
  // First bound >= value: upper-INCLUSIVE assignment (value == bound lands
  // in that bucket), matching Prometheus `le` and the admission layer's
  // original queue-wait histogram.
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  if (it == bounds_.end()) return bounds_.size() - 1;  // only if value == +inf
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::Observe(double value) {
  counts_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  double updated;
  uint64_t updated_bits;
  do {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    updated = current + value;
    std::memcpy(&updated_bits, &updated, sizeof(updated_bits));
  } while (!sum_bits_.compare_exchange_weak(observed, updated_bits,
                                            std::memory_order_relaxed));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  std::memcpy(&snap.sum, &bits, sizeof(snap.sum));
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(std::max(q, 0.0), 1.0);
  // Target rank in [1, count]; walk the cumulative distribution to the
  // bucket holding it, then interpolate linearly inside that bucket.
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = i > 0 ? bounds[i - 1] : 0;
    const double hi = bounds[i];
    if (std::isinf(hi)) {
      // No upper edge to interpolate against: clamp to the largest finite
      // bound (the standard Prometheus behavior).
      return bounds.size() >= 2 ? bounds[bounds.size() - 2] : lo;
    }
    const double fraction =
        (target - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * fraction;
  }
  return bounds.size() >= 2 ? bounds[bounds.size() - 2] : 0;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreateSeries(
    const std::string& name, const std::string& help, MetricKind kind,
    const MetricLabels& labels) {
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help;
  } else if (family.kind != kind) {
    // Kind clash is a programming error; refuse to cross-wire instruments.
    return nullptr;
  }
  for (Series& series : family.series) {
    if (series.labels == labels) return &series;
  }
  family.series.push_back(Series{labels, nullptr, nullptr, nullptr});
  return &family.series.back();
}

std::shared_ptr<Counter> MetricsRegistry::GetCounter(
    const std::string& name, const std::string& help,
    const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      FindOrCreateSeries(name, help, MetricKind::kCounter, labels);
  if (series == nullptr) {
    ERA_LOG(Warn) << "metric kind clash for " << name
                  << "; returning detached counter";
    return std::make_shared<Counter>();
  }
  if (series->counter == nullptr) series->counter = std::make_shared<Counter>();
  return series->counter;
}

std::shared_ptr<Gauge> MetricsRegistry::GetGauge(const std::string& name,
                                                 const std::string& help,
                                                 const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series = FindOrCreateSeries(name, help, MetricKind::kGauge, labels);
  if (series == nullptr) {
    ERA_LOG(Warn) << "metric kind clash for " << name
                  << "; returning detached gauge";
    return std::make_shared<Gauge>();
  }
  if (series->gauge == nullptr) series->gauge = std::make_shared<Gauge>();
  return series->gauge;
}

std::shared_ptr<Histogram> MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& help,
    const MetricLabels& labels, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* series =
      FindOrCreateSeries(name, help, MetricKind::kHistogram, labels);
  if (series == nullptr) {
    ERA_LOG(Warn) << "metric kind clash for " << name
                  << "; returning detached histogram";
    return std::make_shared<Histogram>(std::move(bounds));
  }
  if (series->histogram == nullptr) {
    series->histogram = std::make_shared<Histogram>(std::move(bounds));
  }
  return series->histogram;
}

uint64_t MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_collector_id_++;
  collectors_[id] = std::move(collector);
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  // Copy the shape under the lock, read instrument values outside it (the
  // instruments are lock-free and shared_ptr keeps them alive), and run the
  // collectors outside it too — a collector is free to look at mutex-guarded
  // engine state that may itself touch the registry.
  struct PendingSeries {
    std::string name;
    std::string help;
    MetricKind kind;
    MetricLabels labels;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };
  std::vector<PendingSeries> pending;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : families_) {
      for (const Series& series : family.series) {
        pending.push_back({name, family.help, family.kind, series.labels,
                           series.counter, series.gauge, series.histogram});
      }
    }
    collectors.reserve(collectors_.size());
    for (const auto& [id, collector] : collectors_) {
      collectors.push_back(collector);
    }
  }
  std::vector<MetricSample> samples;
  samples.reserve(pending.size());
  for (const PendingSeries& series : pending) {
    MetricSample sample;
    sample.name = series.name;
    sample.help = series.help;
    sample.kind = series.kind;
    sample.labels = series.labels;
    switch (series.kind) {
      case MetricKind::kCounter:
        if (series.counter == nullptr) continue;
        sample.value = static_cast<double>(series.counter->Value());
        break;
      case MetricKind::kGauge:
        if (series.gauge == nullptr) continue;
        sample.value = series.gauge->Value();
        break;
      case MetricKind::kHistogram:
        if (series.histogram == nullptr) continue;
        sample.hist = series.histogram->snapshot();
        break;
    }
    samples.push_back(std::move(sample));
  }
  for (const Collector& collector : collectors) {
    collector(&samples);
  }
  return samples;
}

std::string RenderLabels(const MetricLabels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    for (char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  return out;
}

namespace {

/// Series line `name{labels} value` (labels optionally extended with an
/// extra `le` pair for histogram buckets).
void AppendSeriesLine(std::string* out, const std::string& name,
                      const MetricLabels& labels, const char* extra_key,
                      const std::string& extra_value, double value) {
  *out += name;
  MetricLabels all = labels;
  if (extra_key != nullptr) all.emplace_back(extra_key, extra_value);
  if (!all.empty()) {
    *out += '{';
    *out += RenderLabels(all);
    *out += '}';
  }
  *out += ' ';
  *out += FormatValue(value);
  *out += '\n';
}

}  // namespace

std::string MetricsRegistry::ExportPrometheus() const {
  const std::vector<MetricSample> samples = Snapshot();
  // Group by family: Prometheus requires all series of a metric name to sit
  // under a single HELP/TYPE header, and collector samples may interleave
  // with registered ones.
  std::map<std::string, std::vector<const MetricSample*>> by_name;
  for (const MetricSample& sample : samples) {
    by_name[sample.name].push_back(&sample);
  }
  std::string out;
  for (const auto& [name, group] : by_name) {
    const MetricSample& head = *group.front();
    out += "# HELP " + name + " " +
           (head.help.empty() ? std::string("(no help)") : head.help) + "\n";
    out += "# TYPE " + name + " " + KindName(head.kind) + "\n";
    for (const MetricSample* sample : group) {
      if (sample->kind == MetricKind::kHistogram) {
        uint64_t cumulative = 0;
        for (std::size_t i = 0; i < sample->hist.bounds.size(); ++i) {
          cumulative += sample->hist.counts[i];
          AppendSeriesLine(&out, name + "_bucket", sample->labels, "le",
                           FormatValue(sample->hist.bounds[i]),
                           static_cast<double>(cumulative));
        }
        AppendSeriesLine(&out, name + "_sum", sample->labels, nullptr, "",
                         sample->hist.sum);
        AppendSeriesLine(&out, name + "_count", sample->labels, nullptr, "",
                         static_cast<double>(sample->hist.count));
      } else {
        AppendSeriesLine(&out, name, sample->labels, nullptr, "",
                         sample->value);
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& sample : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(sample.name) + "\"";
    out += ",\"kind\":\"";
    out += KindName(sample.kind);
    out += "\"";
    out += ",\"labels\":{";
    for (std::size_t i = 0; i < sample.labels.size(); ++i) {
      if (i > 0) out += ',';
      out += "\"" + JsonEscape(sample.labels[i].first) + "\":\"" +
             JsonEscape(sample.labels[i].second) + "\"";
    }
    out += "}";
    if (sample.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + JsonNumber(static_cast<double>(sample.hist.count));
      out += ",\"sum\":" + JsonNumber(sample.hist.sum);
      out += ",\"p50\":" + JsonNumber(sample.hist.Quantile(0.50));
      out += ",\"p90\":" + JsonNumber(sample.hist.Quantile(0.90));
      out += ",\"p99\":" + JsonNumber(sample.hist.Quantile(0.99));
      out += ",\"buckets\":[";
      for (std::size_t i = 0; i < sample.hist.bounds.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"le\":" + JsonNumber(sample.hist.bounds[i]) +
               ",\"count\":" +
               JsonNumber(static_cast<double>(sample.hist.counts[i])) + "}";
      }
      out += "]";
    } else {
      out += ",\"value\":" + JsonNumber(sample.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder(const TraceRecorderOptions& options)
    : options_(options) {}

std::shared_ptr<Trace> TraceRecorder::StartTrace(std::string label,
                                                 uint64_t client_id) {
  auto trace = std::make_shared<Trace>();
  trace->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  trace->client_id = client_id;
  trace->label = std::move(label);
  trace->start_time = std::chrono::steady_clock::now();
  trace->max_spans = options_.max_spans_per_trace;
  started_.fetch_add(1, std::memory_order_relaxed);
  return trace;
}

void TraceRecorder::FinishTrace(const std::shared_ptr<Trace>& trace,
                                const Status& status) {
  if (trace == nullptr) return;
  trace->total_us = trace->NowUs();
  trace->status = status.ok() ? "OK" : status.ToString();
  completed_.fetch_add(1, std::memory_order_relaxed);
  const bool slow = options_.slow_query_seconds > 0 &&
                    trace->total_us >= options_.slow_query_seconds * 1e6;
  if (slow) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    if (options_.log_slow) {
      ERA_LOG(Warn) << "slow query: " << trace->label << " trace=" << trace->id
                    << " client=" << trace->client_id << " took "
                    << trace->total_us / 1000.0 << " ms ("
                    << trace->spans.size() << " spans, status "
                    << trace->status << ")";
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(trace);
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  if (slow) {
    slow_ring_.push_back(trace);
    while (slow_ring_.size() > options_.slow_ring_capacity) {
      slow_ring_.pop_front();
    }
  }
}

std::vector<std::shared_ptr<const Trace>> TraceRecorder::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<std::shared_ptr<const Trace>> TraceRecorder::Slow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {slow_ring_.begin(), slow_ring_.end()};
}

std::string TraceRecorder::ExportChromeTracing() const {
  const auto traces = Recent();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto event = [&](const std::string& name, uint64_t tid, double ts_us,
                   double dur_us, const std::string& args_json) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(name) + "\",\"ph\":\"X\",\"pid\":1";
    out += ",\"tid\":" + FormatValue(static_cast<double>(tid));
    out += ",\"ts\":" + JsonNumber(ts_us);
    out += ",\"dur\":" + JsonNumber(dur_us);
    if (!args_json.empty()) out += ",\"args\":{" + args_json + "}";
    out += "}";
  };
  for (const auto& trace : traces) {
    // Root event: the whole request. Each trace gets its own track so
    // concurrent requests never interleave visually.
    event(trace->label, trace->id, 0, trace->total_us,
          "\"client\":" + FormatValue(static_cast<double>(trace->client_id)) +
              ",\"status\":\"" + JsonEscape(trace->status) +
              "\",\"dropped_spans\":" +
              FormatValue(static_cast<double>(trace->dropped_spans)));
    for (const TraceSpanRecord& span : trace->spans) {
      std::string args = "\"depth\":" + FormatValue(span.depth);
      if (span.note != nullptr) {
        args += ",\"note\":\"" + JsonEscape(span.note) + "\"";
      }
      event(span.name, trace->id, span.start_us, span.dur_us, args);
    }
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Phase profiling
// ---------------------------------------------------------------------------

void PhaseProfiler::Record(const std::string& phase, unsigned worker,
                           double seconds, uint64_t calls) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : entries_) {
    if (entry.phase == phase && entry.worker == worker) {
      entry.seconds += seconds;
      entry.calls += calls;
      return;
    }
  }
  entries_.push_back(Entry{phase, worker, seconds, calls});
}

void PhaseProfiler::Merge(const std::vector<Entry>& entries) {
  for (const Entry& entry : entries) {
    Record(entry.phase, entry.worker, entry.seconds, entry.calls);
  }
}

std::vector<PhaseProfiler::Entry> PhaseProfiler::Entries() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  // Stable sort keeps first-recorded phase order; workers ascend within a
  // phase.
  std::vector<std::string> phase_order;
  for (const Entry& entry : out) {
    if (std::find(phase_order.begin(), phase_order.end(), entry.phase) ==
        phase_order.end()) {
      phase_order.push_back(entry.phase);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [&](const Entry& a, const Entry& b) {
                     auto rank = [&](const std::string& phase) {
                       return std::find(phase_order.begin(), phase_order.end(),
                                        phase) -
                              phase_order.begin();
                     };
                     if (rank(a.phase) != rank(b.phase)) {
                       return rank(a.phase) < rank(b.phase);
                     }
                     return a.worker < b.worker;
                   });
  return out;
}

std::string FormatPhaseTable(
    const std::vector<PhaseProfiler::Entry>& entries) {
  if (entries.empty()) return "";
  // Collect the worker columns and phase rows actually present.
  std::vector<unsigned> workers;
  std::vector<std::string> phases;
  for (const auto& entry : entries) {
    if (std::find(workers.begin(), workers.end(), entry.worker) ==
        workers.end()) {
      workers.push_back(entry.worker);
    }
    if (std::find(phases.begin(), phases.end(), entry.phase) == phases.end()) {
      phases.push_back(entry.phase);
    }
  }
  std::sort(workers.begin(), workers.end());
  auto cell = [&](const std::string& phase, unsigned worker,
                  double* seconds, uint64_t* calls) {
    for (const auto& entry : entries) {
      if (entry.phase == phase && entry.worker == worker) {
        *seconds = entry.seconds;
        *calls = entry.calls;
        return true;
      }
    }
    return false;
  };
  std::ostringstream out;
  out << "phase breakdown (seconds; workers w0..w" << workers.back() << "):\n";
  std::size_t name_width = 5;
  for (const auto& phase : phases) {
    name_width = std::max(name_width, phase.size());
  }
  out << "  " << std::string(name_width, ' ') << " ";
  char buf[64];
  for (unsigned worker : workers) {
    std::snprintf(buf, sizeof(buf), "%9s",
                  ("w" + std::to_string(worker)).c_str());
    out << buf;
  }
  out << "     total    calls\n";
  for (const auto& phase : phases) {
    out << "  " << phase << std::string(name_width - phase.size(), ' ') << " ";
    double total = 0;
    uint64_t total_calls = 0;
    for (unsigned worker : workers) {
      double seconds = 0;
      uint64_t calls = 0;
      if (cell(phase, worker, &seconds, &calls)) {
        total += seconds;
        total_calls += calls;
        std::snprintf(buf, sizeof(buf), "%9.3f", seconds);
      } else {
        std::snprintf(buf, sizeof(buf), "%9s", "-");
      }
      out << buf;
    }
    std::snprintf(buf, sizeof(buf), "%10.3f %8llu", total,
                  static_cast<unsigned long long>(total_calls));
    out << buf << "\n";
  }
  return out.str();
}

}  // namespace era
