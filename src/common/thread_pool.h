// Fixed-size worker pool used by the shared-memory parallel builders.

#ifndef ERA_COMMON_THREAD_POOL_H_
#define ERA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace era {

/// A fixed pool of worker threads draining a FIFO task queue.
///
/// Tasks are arbitrary void() callables. WaitIdle() blocks until the queue is
/// empty and all workers are idle, which is how builders implement a barrier
/// at the end of a construction phase.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void WaitIdle();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace era

#endif  // ERA_COMMON_THREAD_POOL_H_
