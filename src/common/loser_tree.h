// Flat loser-tree k-way merger.
//
// Replaces std::priority_queue in the merge loops of the builders: a loser
// tree replaces the winner with its next key in exactly ceil(log2 k)
// comparisons along one root path (no sift-down branching, no push/pop
// pair), and its nodes live in one flat array that is recycled across
// rounds. Ways are compared by (key, way index), so equal keys pop in way
// order and the merge is deterministic.
//
// Usage:
//   LoserTree tree;
//   tree.Reset(k);                    // reuses internal capacity
//   for (way : 0..k-1) tree.SetKey(way, first_key_of(way));  // or kExhausted
//   tree.Build();
//   while (!tree.Empty()) {
//     uint32_t way = tree.MinWay();
//     consume(way, tree.MinKey());
//     tree.Replace(next_key_of(way));  // kExhausted when the way runs dry
//   }

#ifndef ERA_COMMON_LOSER_TREE_H_
#define ERA_COMMON_LOSER_TREE_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace era {

class LoserTree {
 public:
  /// Sentinel key for an exhausted way; the merge ends when every way
  /// carries it.
  static constexpr uint64_t kExhausted = std::numeric_limits<uint64_t>::max();

  /// Prepares the tree for `k` ways (k >= 1). Reuses allocated capacity;
  /// all keys start exhausted.
  void Reset(uint32_t k) {
    leaves_ = 2;
    while (leaves_ < k) leaves_ <<= 1;
    keys_.assign(leaves_, kExhausted);
    loser_.assign(leaves_, 0);
    winner_ = 0;
  }

  void SetKey(uint32_t way, uint64_t key) { keys_[way] = key; }

  /// Builds the tournament after the initial SetKey calls.
  void Build() { winner_ = InitNode(1); }

  bool Empty() const { return keys_[winner_] == kExhausted; }
  uint32_t MinWay() const { return winner_; }
  uint64_t MinKey() const { return keys_[winner_]; }

  /// Replaces the current winner's key and re-plays its root path.
  void Replace(uint64_t key) {
    uint32_t way = winner_;
    keys_[way] = key;
    for (uint32_t node = (way + leaves_) >> 1; node >= 1; node >>= 1) {
      if (Less(loser_[node], way)) {
        uint32_t tmp = loser_[node];
        loser_[node] = way;
        way = tmp;
      }
    }
    winner_ = way;
  }

 private:
  bool Less(uint32_t a, uint32_t b) const {
    return keys_[a] < keys_[b] || (keys_[a] == keys_[b] && a < b);
  }

  uint32_t InitNode(uint32_t node) {
    if (node >= leaves_) return node - leaves_;
    uint32_t left = InitNode(2 * node);
    uint32_t right = InitNode(2 * node + 1);
    if (Less(left, right)) {
      loser_[node] = right;
      return left;
    }
    loser_[node] = left;
    return right;
  }

  uint32_t leaves_ = 0;  // power of two >= k
  uint32_t winner_ = 0;
  std::vector<uint64_t> keys_;    // keys_[way]
  std::vector<uint32_t> loser_;   // loser_[internal node]
};

}  // namespace era

#endif  // ERA_COMMON_LOSER_TREE_H_
