#include "common/options.h"

#include <algorithm>

#include "io/env.h"

namespace era {

Env* BuildOptions::GetEnv() const {
  return env != nullptr ? env : GetDefaultEnv();
}

Status ValidateBuildOptions(const BuildOptions& options) {
  if (options.work_dir.empty()) {
    return Status::InvalidArgument("work_dir must be set");
  }
  if (options.memory_budget < (1 << 16)) {
    return Status::InvalidArgument("memory_budget must be at least 64 KB");
  }
  if (options.min_range == 0 || options.max_range < options.min_range) {
    return Status::InvalidArgument("invalid range clamps");
  }
  if (options.range_policy == RangePolicyKind::kFixed &&
      options.fixed_range == 0) {
    return Status::InvalidArgument("fixed_range must be positive");
  }
  if (options.input_buffer_bytes < 4096) {
    return Status::InvalidArgument("input_buffer_bytes must be >= 4 KB");
  }
  if (options.prefetch_reads && options.prefetch_depth == 0) {
    return Status::InvalidArgument("prefetch_depth must be >= 1");
  }
  return Status::OK();
}

uint64_t ResolveRBufferBytes(const BuildOptions& options, int alphabet_size) {
  if (options.r_buffer_bytes != 0) return options.r_buffer_bytes;
  // Scaled version of the paper's tuning (Figure 8): small alphabets need a
  // smaller R; larger alphabets (bigger branching factor, more concurrent
  // active areas) benefit from a larger one.
  uint64_t lo = alphabet_size <= 4 ? (64ull << 10) : (256ull << 10);
  uint64_t hi = alphabet_size <= 4 ? (32ull << 20) : (256ull << 20);
  uint64_t auto_size = options.memory_budget / 16;
  return std::clamp(auto_size, lo, hi);
}

}  // namespace era
