// Build configuration shared by all construction algorithms.

#ifndef ERA_COMMON_OPTIONS_H_
#define ERA_COMMON_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "suffixtree/node.h"

namespace era {

class Env;

/// How SubTreePrepare chooses the per-iteration range of prefetched symbols
/// (Section 4.4).
enum class RangePolicyKind {
  /// range = |R| / (active leaves): grows as leaves resolve (the paper's
  /// elastic range).
  kElastic,
  /// A constant range regardless of |R| (the static 16/32-symbol baselines of
  /// Figure 9(b)).
  kFixed,
};

/// Which horizontal-partitioning method builds each sub-tree (Figure 7).
enum class HorizontalMethod {
  /// SubTreePrepare + BuildSubTree (Section 4.2.2, "ERA-str+mem").
  kPrepareBuild,
  /// ComputeSuffixSubTree / BranchEdge (Section 4.2.1, "ERA-str").
  kBranchEdge,
};

/// Memory and behavior knobs for a build. The defaults are laptop-scaled
/// versions of the paper's settings; all experiments override them per sweep.
struct BuildOptions {
  /// Total memory the builder may use for tree + processing + buffers.
  uint64_t memory_budget = 64ull << 20;

  /// Read-ahead buffer R for next-symbol ranges; 0 = auto (Figure 8's tuned
  /// values, scaled: budget/16 clamped to [64 KB, 32 MB] for 4-symbol
  /// alphabets and [256 KB, 256 MB] for larger ones).
  uint64_t r_buffer_bytes = 0;

  /// Input buffer B_S (the paper uses 1 MB).
  uint64_t input_buffer_bytes = 1 << 20;

  /// Group sub-trees into virtual trees to share scans (Section 4.1).
  bool group_virtual_trees = true;

  /// Horizontal partitioning method (Section 4.2 / Figure 7).
  HorizontalMethod horizontal = HorizontalMethod::kPrepareBuild;

  /// Elastic vs fixed prefetch range (Section 4.4 / Figure 9(b)).
  RangePolicyKind range_policy = RangePolicyKind::kElastic;
  /// Range used when range_policy == kFixed.
  uint32_t fixed_range = 32;

  /// Lower/upper clamps for the elastic range.
  uint32_t min_range = 4;
  uint32_t max_range = 64 << 10;

  /// Skip unneeded blocks with a seek during scans (Section 4.4).
  bool seek_optimization = true;

  /// Ring-buffered read-ahead on the sequential scans (vertical counting,
  /// occurrence scans, SubTreePrepare rounds): a background thread keeps
  /// the next input-buffer windows read while the builder consumes the
  /// resident one, hiding device latency behind compute. See
  /// PrefetchingStringReader.
  bool prefetch_reads = true;

  /// Speculative windows the prefetch ring keeps ahead of each scan (1 =
  /// classic double buffering). PlanMemory charges the ring's windows
  /// against the retrieved-data slack, after the tile cache: a build whose
  /// cache consumed the slack runs with a shallower ring (possibly none),
  /// so read-ahead never silently exceeds the budget
  /// (MemoryLayout::read_ahead_bytes).
  uint32_t prefetch_depth = 4;

  /// Shared read-through tile cache over the input text (io/tile_cache.h):
  /// every horizontal-phase reader of every worker is served from one
  /// process-wide budgeted cache, so repeated scans of the same tiles stop
  /// hitting the device. The budget is carved out of memory_budget's
  /// retrieved-data area (the elastic range shrinks accordingly; FM and the
  /// partition plan are unchanged, so cached and uncached builds emit
  /// byte-identical indexes). Disabled automatically when the budget is too
  /// small to spare cache room.
  bool tile_cache = true;

  /// Total tile-cache budget in bytes across all workers; 0 = auto (each
  /// worker's share is carved from its R allocation, leaving at least
  /// max(512 KB, R/8) of elastic-range room, and capped at the per-core
  /// share of the tile-rounded file size — see PlanMemoryForBuild). An
  /// explicit budget that does not fit in the retrieved-data area fails
  /// with OutOfBudget.
  uint64_t tile_cache_budget_bytes = 0;

  /// Maintain `<work_dir>/CHECKPOINT`, a crash-consistent record of the
  /// prefix groups whose sub-trees are fully on disk. Costs one small
  /// atomic file rewrite per completed group; makes a killed build
  /// resumable.
  bool checkpoint = true;

  /// Resume from an existing CHECKPOINT in work_dir: checksum-verify the
  /// recorded groups' sub-tree files, skip rebuilding the ones that check
  /// out, and rebuild only the remainder. A missing, stale, or corrupt
  /// checkpoint degrades to a full rebuild (never an error). The resumed
  /// index is byte-identical to an uninterrupted build.
  bool resume = false;

  /// On-disk sub-tree format to emit (node.h). kPacked (v3) bit-packs node
  /// records and delta/varint-encodes leaf slots — typically 2-4x smaller on
  /// disk and in the serving cache; kCounted (v2) writes fixed 32-byte
  /// records. Readers accept both, and queries answer identically.
  SubTreeFormat format = SubTreeFormat::kPacked;

  /// Directory that receives serialized sub-trees and the index manifest.
  std::string work_dir;

  /// Filesystem; nullptr = process-wide POSIX Env.
  Env* env = nullptr;

  /// Resolved Env (never null).
  Env* GetEnv() const;
};

/// Checks internal consistency (budget large enough for the fixed areas,
/// non-empty work_dir, sane range clamps).
Status ValidateBuildOptions(const BuildOptions& options);

/// Resolves r_buffer_bytes: explicit value, or the alphabet-dependent auto
/// rule described on BuildOptions::r_buffer_bytes.
uint64_t ResolveRBufferBytes(const BuildOptions& options, int alphabet_size);

}  // namespace era

#endif  // ERA_COMMON_OPTIONS_H_
