// Minimal leveled logger. Library code logs sparingly (warnings and above);
// benchmarks and examples may raise the level for progress reporting.

#ifndef ERA_COMMON_LOGGING_H_
#define ERA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace era {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted (default kWarn).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Collects a single message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace era

#define ERA_LOG(level)                                             \
  ::era::internal::LogMessage(::era::LogLevel::k##level, __FILE__, \
                              __LINE__)

#endif  // ERA_COMMON_LOGGING_H_
