// Process-wide metrics registry, per-query tracing, and phase profiling —
// the observability substrate for the serving and build paths.
//
// The system previously exposed seven disjoint counter surfaces (IoStats,
// QueryStats, ServingStats, DocQueryStats, the sub-tree cache snapshot,
// BuildStats, the quarantine map), each with its own snapshot call and
// ad-hoc printing. This header unifies them behind one registry without
// disturbing the existing snapshot APIs: the structs remain the public
// views, but their numbers now live in (or are collected into) registry
// instruments, so a single exporter can serve everything a future
// `/metrics` endpoint needs.
//
// Three layers:
//
//  * Instruments — Counter (sharded atomics: concurrent increments from
//    many serving threads do not bounce one cache line), Gauge, and
//    Histogram (fixed upper-bound buckets, upper-INCLUSIVE like Prometheus
//    `le`, with p50/p90/p99 estimation by intra-bucket interpolation).
//    Instruments are handed out as shared_ptr and stay valid after the
//    registry forgets them.
//
//  * MetricsRegistry — names instruments into families (one HELP/TYPE per
//    family, any number of label-distinguished series), accepts callback
//    collectors for snapshot-style sources that keep their own counters
//    (the sharded sub-tree cache, the quarantine map), and exports
//    everything as Prometheus text or a JSON snapshot.
//
//  * Tracing — a Trace is a per-request span log filled at the existing
//    cooperative checkpoints (admission, sub-tree open, match, collect,
//    device reads). TraceSpan is the RAII recorder; a null trace pointer
//    makes every span a no-op, so untraced queries pay one pointer test
//    per checkpoint. TraceRecorder keeps bounded rings of the last N
//    completed traces and of slow queries (threshold in options), and
//    exports chrome://tracing JSON.
//
// PhaseProfiler (bottom) is the build-side sibling: per-(phase, worker)
// wall-time accumulation surfaced by `era_cli build` as a breakdown table.

#ifndef ERA_COMMON_METRICS_H_
#define ERA_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace era {

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotonic counter, sharded across cache lines. Increment is wait-free
/// (one relaxed fetch_add on the calling thread's shard); Value() sums the
/// shards and is intended for snapshot/export paths, not hot loops.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr unsigned kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Threads are assigned shards round-robin on first use; the assignment
  /// is process-wide so two counters never force the same pair of threads
  /// into the same shard by construction.
  static unsigned ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// Last-value instrument (resident bytes, queue depth, ...). Set/Add are
/// atomic; no sharding — gauges are written rarely.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { bits_.store(Pack(value), std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return Unpack(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Pack(double value);
  static double Unpack(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// Point-in-time view of a histogram: per-bucket counts plus total count and
/// sum, with quantile estimation.
struct HistogramSnapshot {
  /// Bucket upper bounds, ascending; the last entry is +infinity. A value v
  /// lands in the first bucket with v <= bounds[i] (upper-INCLUSIVE, the
  /// Prometheus `le` convention — and the convention the admission layer's
  /// original hand-rolled histogram used, pinned by admission_test).
  std::vector<double> bounds;
  /// Per-bucket (NON-cumulative) observation counts, same length as bounds.
  std::vector<uint64_t> counts;
  uint64_t count = 0;  ///< Total observations.
  double sum = 0;      ///< Sum of observed values.

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank; values in the +inf bucket clamp to the
  /// largest finite bound. NaN when empty.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram. Observe() is lock-free (two relaxed atomic adds
/// plus a CAS loop for the sum); bucket layout is immutable after
/// construction.
class Histogram {
 public:
  /// `bounds` are ascending upper bounds; a trailing +infinity is appended
  /// if absent. An empty vector gets the default latency layout.
  explicit Histogram(std::vector<double> bounds = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Index of the bucket `value` lands in (first i with value <=
  /// bounds()[i]). Exposed so tests can pin bucket semantics.
  std::size_t BucketFor(double value) const;

  const std::vector<double>& bounds() const { return bounds_; }
  HistogramSnapshot snapshot() const;
  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Quantile(double q) const { return snapshot().Quantile(q); }

  /// Geometric bucket ladder: min, min*factor, ... up to >= max (then +inf).
  static std::vector<double> LogBuckets(double min, double max,
                                        double factor = 2.0);
  /// Default latency layout: 2x steps from 1 microsecond to ~16 seconds.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // packed double
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Label set of one series, e.g. {{"engine","0"}}. Order is preserved into
/// the exports.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// One exported sample (a registered instrument read at snapshot time, or a
/// sample contributed by a collector callback).
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  MetricLabels labels;
  double value = 0;        ///< Counter/gauge value.
  HistogramSnapshot hist;  ///< Histogram payload (kind == kHistogram).
};

/// Thread-safe instrument registry with pluggable snapshot collectors and
/// two exporters. Get* registers on first use and returns the existing
/// instrument on every later call with the same (name, labels) — callers in
/// different subsystems naturally share series. Instruments are shared_ptr:
/// they outlive the registry entry and may also be created standalone
/// (never registered) when a subsystem opts out of export.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the CLI exporters serve.
  static MetricsRegistry* Global();

  std::shared_ptr<Counter> GetCounter(const std::string& name,
                                      const std::string& help,
                                      const MetricLabels& labels = {});
  std::shared_ptr<Gauge> GetGauge(const std::string& name,
                                  const std::string& help,
                                  const MetricLabels& labels = {});
  /// `bounds` applies only when the series is created by this call; an
  /// empty vector means Histogram::DefaultLatencyBounds().
  std::shared_ptr<Histogram> GetHistogram(const std::string& name,
                                          const std::string& help,
                                          const MetricLabels& labels = {},
                                          std::vector<double> bounds = {});

  /// Snapshot-time callback contributing samples for state that keeps its
  /// own counters (cache shards, quarantine map). Returns a handle for
  /// RemoveCollector; the owner MUST remove itself before the state it
  /// captures dies.
  using Collector = std::function<void(std::vector<MetricSample>*)>;
  uint64_t AddCollector(Collector collector);
  void RemoveCollector(uint64_t id);

  /// All current samples: registered instruments first (sorted by family
  /// name), then collector output. The raw material of both exporters and
  /// of the CLI's degradation printer.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition: one # HELP + # TYPE per family, series
  /// lines with rendered labels, histograms as cumulative _bucket{le=...}
  /// plus _sum/_count.
  std::string ExportPrometheus() const;
  /// JSON snapshot: {"metrics":[{name,kind,labels,value|count/sum/
  /// p50/p90/p99/buckets}]}.
  std::string ExportJson() const;

 private:
  struct Series {
    MetricLabels labels;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::kGauge;
    std::string help;
    std::vector<Series> series;
  };

  Series* FindOrCreateSeries(const std::string& name, const std::string& help,
                             MetricKind kind, const MetricLabels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_id_ = 1;
};

/// Renders labels as `k="v",k2="v2"` (no braces); empty for no labels.
std::string RenderLabels(const MetricLabels& labels);

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One completed span inside a trace. `name`/`note` must be string
/// literals (the checkpoints are fixed program points).
struct TraceSpanRecord {
  const char* name = "";
  const char* note = nullptr;  ///< e.g. "cache_hit"; nullptr when none.
  double start_us = 0;         ///< Microseconds since the trace started.
  double dur_us = 0;
  int depth = 0;  ///< Nesting depth (0 = directly under the root).
};

/// Span log of one request. Filled by exactly one thread (the query thread)
/// between StartTrace and FinishTrace; immutable afterwards.
struct Trace {
  uint64_t id = 0;
  uint64_t client_id = 0;
  std::string label;  ///< e.g. "count" / "locate".
  double total_us = 0;
  std::string status = "OK";  ///< Final status code name.
  std::vector<TraceSpanRecord> spans;
  std::size_t dropped_spans = 0;  ///< Spans beyond the per-trace cap.

  /// Microseconds since the trace started (span timestamps).
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_time)
        .count();
  }

  // Recorder internals (public so TraceSpan stays trivial).
  std::chrono::steady_clock::time_point start_time;
  int depth = 0;
  std::size_t max_spans = 512;
};

/// RAII span. Constructed with a null trace it does nothing — that is the
/// entire cost of tracing being off on a hot path.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, const char* name) : trace_(trace), name_(name) {
    if (trace_ != nullptr) {
      start_us_ = trace_->NowUs();
      depth_ = trace_->depth++;
    }
  }
  ~TraceSpan() {
    if (trace_ == nullptr) return;
    --trace_->depth;
    if (trace_->spans.size() >= trace_->max_spans) {
      ++trace_->dropped_spans;
      return;
    }
    trace_->spans.push_back(
        {name_, note_, start_us_, trace_->NowUs() - start_us_, depth_});
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an annotation decided mid-span (e.g. cache hit vs miss).
  void set_note(const char* note) { note_ = note; }

 private:
  Trace* trace_;
  const char* name_;
  const char* note_ = nullptr;
  double start_us_ = 0;
  int depth_ = 0;
};

struct TraceRecorderOptions {
  /// Completed traces kept (ring; oldest evicted first).
  std::size_t ring_capacity = 128;
  /// Slow traces kept in the separate slow-query ring.
  std::size_t slow_ring_capacity = 32;
  /// A completed trace at least this long is slow: kept in the slow ring
  /// and (when log_slow) emitted as one ERA_LOG(Warn) line. <= 0 disables
  /// the slow-query log entirely.
  double slow_query_seconds = 0;
  /// Emit a log line per slow query (in addition to keeping the trace).
  bool log_slow = true;
  /// Span cap per trace; beyond it spans are counted as dropped, never
  /// allocated.
  std::size_t max_spans_per_trace = 512;
};

/// Owns the bounded rings of completed traces. Thread-safe; one per
/// QueryEngine (created when tracing is enabled in its options).
class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceRecorderOptions& options = {});

  /// Begins a trace. The caller threads trace.get() through its
  /// QueryContext and MUST pass the trace back to FinishTrace.
  std::shared_ptr<Trace> StartTrace(std::string label, uint64_t client_id);
  void FinishTrace(const std::shared_ptr<Trace>& trace, const Status& status);

  /// Last completed traces, oldest first.
  std::vector<std::shared_ptr<const Trace>> Recent() const;
  /// Slow-query ring, oldest first.
  std::vector<std::shared_ptr<const Trace>> Slow() const;

  uint64_t traces_started() const {
    return started_.load(std::memory_order_relaxed);
  }
  uint64_t traces_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  uint64_t slow_traces() const { return slow_.load(std::memory_order_relaxed); }

  /// chrome://tracing / Perfetto-loadable JSON of the recent ring: each
  /// trace renders as its own track (tid = trace id) with a root "X" event
  /// spanning the whole request and one nested "X" event per span.
  std::string ExportChromeTracing() const;

  const TraceRecorderOptions& options() const { return options_; }

 private:
  const TraceRecorderOptions options_;
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> slow_{0};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const Trace>> ring_;
  std::deque<std::shared_ptr<const Trace>> slow_ring_;
};

// ---------------------------------------------------------------------------
// Build-phase profiling
// ---------------------------------------------------------------------------

/// Wall-time accumulator keyed by (phase, worker). Record() is coarse
/// (once per task/group, not per item), so a mutex is fine.
class PhaseProfiler {
 public:
  struct Entry {
    std::string phase;
    unsigned worker = 0;
    double seconds = 0;
    uint64_t calls = 0;
  };

  void Record(const std::string& phase, unsigned worker, double seconds,
              uint64_t calls = 1);
  void Merge(const std::vector<Entry>& entries);

  /// Entries in first-recorded phase order, workers ascending within a
  /// phase.
  std::vector<Entry> Entries() const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Renders phase entries as the `era_cli build` breakdown table: one row
/// per phase, one column per worker, plus total seconds and call counts.
std::string FormatPhaseTable(const std::vector<PhaseProfiler::Entry>& entries);

}  // namespace era

#endif  // ERA_COMMON_METRICS_H_
