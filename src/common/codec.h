// Bit-level and byte-level codecs for the compressed sub-tree format (v3).
//
// Three primitives, all deterministic and allocation-light:
//  * LEB128 varints (PutVarint64/GetVarint64) with zigzag for signed deltas —
//    the leaf-offset streams are delta-coded in slot order, and adjacent
//    suffix offsets go both directions.
//  * BitWidth + MaskLow — the width-selection rule: every packed field of a
//    sub-tree is stored in exactly BitWidth(max value) bits.
//  * BitWriter/BitReader — fixed-width bit packing in little-endian bit
//    order (bit i of the stream is bit i%8 of byte i/8). The reader decodes
//    a field with two unaligned 64-bit loads, so random node access inside a
//    packed record costs a handful of instructions; callers must guarantee
//    kBitReaderPadBytes of readable tail (CompressedSubTree appends the pad
//    to its blob, it is never written to disk).

#ifndef ERA_COMMON_CODEC_H_
#define ERA_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace era {

/// Appends `v` to `dst` as an LEB128 varint (1..10 bytes).
inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Decodes a varint from data[*pos..size); advances *pos past it. Returns
/// false (leaving *out unspecified) on truncation or a >64-bit encoding.
inline bool GetVarint64(const char* data, std::size_t size, std::size_t* pos,
                        uint64_t* out) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) return false;
    const uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      if (shift == 63 && byte > 1) return false;  // overflows 64 bits
      result |= static_cast<uint64_t>(byte) << shift;
      *out = result;
      return true;
    }
  }
  return false;  // 10th byte still had the continuation bit set
}

/// Order-preserving signed→unsigned mapping so small deltas of either sign
/// stay short varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Bits needed to store `v` exactly: 0 for 0, 64 for ~0ull. The v3 width
/// rule is w_field = BitWidth(max over the sub-tree).
inline uint32_t BitWidth(uint64_t v) {
  uint32_t w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Low `width` one-bits (width in [0, 64]).
inline uint64_t MaskLow(uint32_t width) {
  return width >= 64 ? ~0ull : (1ull << width) - 1;
}

/// Readable bytes a BitReader may touch past the last encoded bit.
inline constexpr std::size_t kBitReaderPadBytes = 8;

/// Appends fixed-width fields to a byte string, LSB-first within each byte.
/// Call Finish() once to flush the final partial byte.
class BitWriter {
 public:
  void Put(uint64_t v, uint32_t width) {
    v &= MaskLow(width);
    uint32_t done = 0;
    while (done < width) {
      const uint32_t take = width - done < 8u - nbits_ ? width - done
                                                       : 8u - nbits_;
      acc_ |= static_cast<uint32_t>((v >> done) & MaskLow(take)) << nbits_;
      nbits_ += take;
      done += take;
      if (nbits_ == 8) {
        buf_.push_back(static_cast<char>(acc_));
        acc_ = 0;
        nbits_ = 0;
      }
    }
  }

  void Finish() {
    if (nbits_ > 0) {
      buf_.push_back(static_cast<char>(acc_));
      acc_ = 0;
      nbits_ = 0;
    }
  }

  const std::string& bytes() const { return buf_; }
  std::string&& TakeBytes() { return std::move(buf_); }

 private:
  std::string buf_;
  uint32_t acc_ = 0;    // partial byte, low nbits_ bits valid
  uint32_t nbits_ = 0;  // always < 8 between calls
};

/// Random-access reads over a BitWriter stream. The buffer must extend
/// kBitReaderPadBytes past the last byte a Get() can start in; little-endian
/// hosts only (the whole node record path assumes LE, like the rest of the
/// on-disk format).
class BitReader {
 public:
  BitReader() = default;
  BitReader(const char* data, std::size_t size_with_pad)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size_with_pad) {}

  uint64_t Get(uint64_t bit_offset, uint32_t width) const {
    if (width == 0) return 0;
    const uint64_t byte = bit_offset >> 3;
    const uint32_t shift = static_cast<uint32_t>(bit_offset & 7);
    uint64_t lo;
    std::memcpy(&lo, data_ + byte, sizeof(lo));
    uint64_t v = lo >> shift;
    if (shift + width > 64) {
      v |= static_cast<uint64_t>(data_[byte + 8]) << (64 - shift);
    }
    return v & MaskLow(width);
  }

 private:
  const uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace era

#endif  // ERA_COMMON_CODEC_H_
