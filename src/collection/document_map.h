// Document catalog for generalized (multi-document) suffix-tree indexes.
//
// A collection index stores ONE concatenated text: the documents joined by a
// reserved separator byte, with the library terminal at the end.  The
// DocumentMap is the persistent sidecar that records where each named
// document lives inside that text, so the serving layer can translate the
// tree's global suffix offsets back into (document, local offset) answers.
//
// Layout invariant (enforced by Create): document spans are disjoint, in
// ascending start order, and consecutive documents are separated by at least
// one non-document byte (the separator).  Because documents never contain
// the separator or the terminal, no pattern over the base alphabet can match
// across a document boundary — cross-document isolation is a property of the
// text layout, not of query-time filtering.
//
// On disk the catalog is a `DOCMAP` file next to `MANIFEST`:
//
//   bytes 0..7   magic "ERADOCMP"
//   payload      u32 version (=1), u8 separator, u32 doc_count, then per
//                document: u64 start, u64 length, u32 name_len, name bytes
//   footer       u32 CRC-32C of the payload
//
// A flipped bit anywhere in the payload fails the checksum on Load.

#ifndef ERA_COLLECTION_DOCUMENT_MAP_H_
#define ERA_COLLECTION_DOCUMENT_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/env.h"

namespace era {

/// Filename of the catalog inside an index directory (next to MANIFEST).
inline constexpr char kDocMapFilename[] = "DOCMAP";

/// One cataloged document: its name and where its body lies in the
/// concatenated text. `length` may be 0 (empty documents are legal).
struct DocumentSpan {
  std::string name;
  uint64_t start = 0;
  uint64_t length = 0;
};

/// A global text offset translated into document coordinates.
struct DocLocation {
  uint32_t doc_id = 0;
  uint64_t local_offset = 0;
};

/// Immutable catalog of the documents behind one collection index.
class DocumentMap {
 public:
  DocumentMap() = default;

  /// Validates the layout invariant (ascending disjoint spans with at least
  /// one separator byte between consecutive documents, unique non-empty
  /// names, separator below the terminal) and builds the catalog.
  static StatusOr<DocumentMap> Create(std::vector<DocumentSpan> documents,
                                      char separator);

  uint32_t num_documents() const {
    return static_cast<uint32_t>(documents_.size());
  }
  const DocumentSpan& document(uint32_t id) const { return documents_[id]; }
  const std::vector<DocumentSpan>& documents() const { return documents_; }
  char separator() const { return separator_; }

  /// Resolves a global text offset to the document containing it. Returns
  /// false for offsets on separator or terminal bytes (no document).
  bool Resolve(uint64_t global_offset, DocLocation* out) const;

  /// Resolves `[global_offset, global_offset + length)` when the whole span
  /// lies inside a single document; returns false if it touches a separator,
  /// the terminal, or runs past the last document.
  bool ResolveSpan(uint64_t global_offset, uint64_t length,
                   DocLocation* out) const;

  /// Id of the document named `name`, or NotFound.
  StatusOr<uint32_t> FindDocument(const std::string& name) const;

  /// Sum of document lengths (separators and terminal excluded).
  uint64_t TotalDocumentBytes() const;

  Status Save(Env* env, const std::string& path) const;
  static StatusOr<DocumentMap> Load(Env* env, const std::string& path);

 private:
  std::vector<DocumentSpan> documents_;
  char separator_ = '\0';
};

/// A named document body awaiting concatenation (raw symbols; no terminal).
struct CollectionDocument {
  std::string name;
  std::string body;
};

/// A concatenated collection: the indexable text plus its catalog.
struct GeneralizedCollection {
  std::string text;
  DocumentMap documents;
};

/// Joins `documents` with `separator` between them (terminal appended) and
/// catalogs every span. InvalidArgument if any body contains the separator
/// or the terminal byte, if names collide, or if no documents are given.
/// This is the single concatenation routine behind CollectionBuilder and
/// query/applications' ConcatenateDocuments.
StatusOr<GeneralizedCollection> ConcatenateCollection(
    const std::vector<CollectionDocument>& documents, char separator);

}  // namespace era

#endif  // ERA_COLLECTION_DOCUMENT_MAP_H_
