// Collection indexing: named documents in, a generalized suffix-tree index
// plus its DOCMAP catalog out.
//
// The builder collects documents (in-memory bodies, raw text files,
// per-record FASTA files, or a synthetic corpus), joins them with the
// reserved separator symbol, extends the alphabet with that separator
// (keeping symbol order: the separator sorts above every document symbol,
// below the terminal), and runs the existing work-stealing ParallelBuilder
// over the combined text.  The resulting directory serves both plain
// pattern queries (QueryEngine) and document-aware queries (DocEngine):
//
//   <dir>/TEXT       the concatenated text (documents + separators + terminal)
//   <dir>/MANIFEST   the usual index manifest (trie + sub-tree catalog)
//   <dir>/st_*       v2 counted sub-tree files
//   <dir>/DOCMAP     the document catalog (collection/document_map.h)

#ifndef ERA_COLLECTION_COLLECTION_BUILDER_H_
#define ERA_COLLECTION_COLLECTION_BUILDER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "collection/document_map.h"
#include "common/options.h"
#include "common/status.h"
#include "era/era_builder.h"
#include "text/fasta.h"

namespace era {

/// Default separator: '|' (0x7C) sorts above every built-in alphabet symbol
/// ('z' = 0x7A is the largest) and below the terminal '~' (0x7E), so the
/// extended alphabet stays in strictly ascending byte order.
inline constexpr char kDocSeparator = '|';

/// Knobs for one collection build.
struct CollectionBuildOptions {
  /// Passed through to the pipeline builder. `work_dir` is the index
  /// directory; `memory_budget` is the TOTAL budget (split across workers).
  BuildOptions build;
  /// Horizontal-phase workers (>= 1); the work-stealing pipeline runs even
  /// single-threaded.
  unsigned num_workers = 1;
  /// Separator symbol; must sort strictly above every alphabet symbol.
  char separator = kDocSeparator;
};

/// A finished collection build.
struct CollectionBuildResult {
  TreeIndex index;
  DocumentMap documents;
  BuildStats stats;
};

/// Accumulates named documents, then builds the generalized index.
class CollectionBuilder {
 public:
  /// `alphabet` is the DOCUMENT alphabet (e.g. Alphabet::Dna()); the indexed
  /// text uses this alphabet extended with the separator.
  CollectionBuilder(const Alphabet& alphabet,
                    const CollectionBuildOptions& options)
      : alphabet_(alphabet), options_(options) {}

  /// Adds one in-memory document. InvalidArgument if the body contains a
  /// byte outside the alphabet (separator and terminal included) or the
  /// name is empty/duplicate.
  Status AddDocument(std::string name, std::string body);

  /// Adds a raw text file as a single document named `name` (defaults to
  /// the path). A trailing terminal byte, if present, is stripped.
  Status AddTextFile(Env* env, const std::string& path,
                     const std::string& name = "");

  /// Adds every record of a FASTA file as one document named by its header
  /// (see ReadFastaRecords). This is where multi-record files become
  /// documents instead of being flattened into one sequence.
  Status AddFastaFile(Env* env, const std::string& path,
                      FastaCleanPolicy policy);

  /// Adds `count` synthetic documents named `<prefix><i>` with bodies drawn
  /// uniformly from the alphabet; lengths vary deterministically in
  /// [body_len/2, 3*body_len/2]. For benchmarks and tests.
  Status AddSyntheticDocuments(std::size_t count, std::size_t body_len,
                               uint64_t seed,
                               const std::string& prefix = "synth");

  std::size_t num_documents() const { return documents_.size(); }

  /// Concatenates, builds the index with the pipelined ParallelBuilder, and
  /// writes DOCMAP next to MANIFEST. The builder can be reused afterwards
  /// (documents stay accumulated).
  StatusOr<CollectionBuildResult> Build();

 private:
  Alphabet alphabet_;
  CollectionBuildOptions options_;
  std::vector<CollectionDocument> documents_;
  std::unordered_set<std::string> names_;  // duplicate check in O(1) per add
};

}  // namespace era

#endif  // ERA_COLLECTION_COLLECTION_BUILDER_H_
