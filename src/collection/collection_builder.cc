#include "collection/collection_builder.h"

#include <random>
#include <utility>

#include "era/parallel_builder.h"
#include "text/corpus.h"

namespace era {

Status CollectionBuilder::AddDocument(std::string name, std::string body) {
  if (name.empty()) return Status::InvalidArgument("document name is empty");
  if (names_.count(name) > 0) {
    return Status::InvalidArgument("duplicate document name: " + name);
  }
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (alphabet_.Contains(c)) continue;
    if (c == options_.separator) {
      return Status::InvalidArgument(
          "document " + name + " contains the reserved separator byte at " +
          std::to_string(i));
    }
    if (c == kTerminal) {
      return Status::InvalidArgument(
          "document " + name + " contains the terminal byte at " +
          std::to_string(i));
    }
    return Status::InvalidArgument("document " + name +
                                   " contains a byte outside the alphabet at " +
                                   std::to_string(i));
  }
  names_.insert(name);
  documents_.push_back({std::move(name), std::move(body)});
  return Status::OK();
}

Status CollectionBuilder::AddTextFile(Env* env, const std::string& path,
                                      const std::string& name) {
  std::string body;
  ERA_RETURN_NOT_OK(env->ReadFileToString(path, &body));
  if (!body.empty() && body.back() == kTerminal) body.pop_back();
  return AddDocument(name.empty() ? path : name, std::move(body));
}

Status CollectionBuilder::AddFastaFile(Env* env, const std::string& path,
                                       FastaCleanPolicy policy) {
  ERA_ASSIGN_OR_RETURN(std::vector<FastaRecord> records,
                       ReadFastaRecords(env, path, alphabet_, policy));
  for (FastaRecord& record : records) {
    ERA_RETURN_NOT_OK(
        AddDocument(std::move(record.header), std::move(record.sequence)));
  }
  return Status::OK();
}

Status CollectionBuilder::AddSyntheticDocuments(std::size_t count,
                                                std::size_t body_len,
                                                uint64_t seed,
                                                const std::string& prefix) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> symbol_dist(0, alphabet_.size() - 1);
  std::uniform_int_distribution<std::size_t> len_dist(
      body_len / 2, body_len + body_len / 2);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t len = body_len == 0 ? 0 : len_dist(rng);
    std::string body;
    body.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      body.push_back(alphabet_.Symbol(symbol_dist(rng)));
    }
    ERA_RETURN_NOT_OK(
        AddDocument(prefix + std::to_string(i), std::move(body)));
  }
  return Status::OK();
}

StatusOr<CollectionBuildResult> CollectionBuilder::Build() {
  if (documents_.empty()) {
    return Status::InvalidArgument("collection has no documents");
  }
  const std::string& symbols = alphabet_.symbols();
  if (static_cast<unsigned char>(options_.separator) <=
      static_cast<unsigned char>(symbols.back())) {
    return Status::InvalidArgument(
        "separator must sort above every alphabet symbol");
  }
  // Extending the alphabet with the separator keeps strictly ascending byte
  // order, so the radix kernel and the counted layout's unsigned child
  // ordering need no special cases for collections.
  ERA_ASSIGN_OR_RETURN(Alphabet extended,
                       Alphabet::Create(symbols + options_.separator));

  ERA_ASSIGN_OR_RETURN(GeneralizedCollection collection,
                       ConcatenateCollection(documents_, options_.separator));

  Env* env = options_.build.GetEnv();
  ERA_RETURN_NOT_OK(env->CreateDir(options_.build.work_dir));
  ERA_ASSIGN_OR_RETURN(
      TextInfo info,
      MaterializeText(env, options_.build.work_dir + "/TEXT", extended,
                      collection.text));

  ParallelBuilder builder(options_.build, options_.num_workers);
  ERA_ASSIGN_OR_RETURN(ParallelBuildResult built, builder.Build(info));

  ERA_RETURN_NOT_OK(collection.documents.Save(
      env, options_.build.work_dir + "/" + kDocMapFilename));

  CollectionBuildResult result;
  result.index = std::move(built.index);
  result.documents = std::move(collection.documents);
  result.stats = built.stats;
  return result;
}

}  // namespace era
