// Document-aware serving over a collection index.
//
// DocEngine layers the DOCMAP catalog on top of the thread-safe QueryEngine:
// a doc query matches the pattern once (O(|P|) walk to the match node),
// enumerates the node's contiguous descendant leaf-slot range, and folds the
// resulting global offsets through the DocumentMap.  Because Locate returns
// offsets in ascending order and document spans are ascending too, the
// per-document histogram falls out of a single merge-style pass — no hash
// table, no second sort.
//
// Patterns containing the reserved separator or terminal byte are rejected
// with InvalidArgument: documents cannot contain them, so such a "match"
// could only be an artifact of the concatenated layout.
//
// Thread-safe: any number of threads may issue doc queries concurrently
// (sessions are pooled inside QueryEngine; the per-call doc counters fold
// into the aggregate under a mutex).

#ifndef ERA_COLLECTION_DOC_ENGINE_H_
#define ERA_COLLECTION_DOC_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "collection/document_map.h"
#include "common/status.h"
#include "query/query_engine.h"

namespace era {

/// One document's share of a pattern's occurrences.
struct DocHit {
  uint32_t doc_id = 0;
  uint64_t occurrences = 0;

  bool operator==(const DocHit& other) const {
    return doc_id == other.doc_id && occurrences == other.occurrences;
  }
};

/// Aggregate counters for the document-query path (tree-walk work is in the
/// underlying QueryEngine's QueryStats; these count catalog work and
/// serving degradation as seen by collection callers).
struct DocQueryStats {
  /// Completed doc-level calls (batch items count individually).
  uint64_t queries = 0;
  /// Global occurrence offsets folded through the DocumentMap.
  uint64_t offsets_resolved = 0;
  /// Offsets that resolved to no document (separator/terminal positions;
  /// always 0 for valid patterns — a nonzero value flags a layout bug).
  uint64_t offsets_outside_documents = 0;
  /// Sum over queries of distinct matching documents.
  uint64_t docs_matched = 0;
  /// Doc queries that failed Unavailable (their sub-tree is quarantined
  /// below; see DocEngine::quarantine()).
  uint64_t unavailable_queries = 0;
  /// Doc queries abandoned by their caller — deadline expiry or
  /// cancellation (both are "the caller stopped waiting"; the split is in
  /// serving().deadline_exceeded vs serving().cancelled).
  uint64_t deadline_exceeded = 0;
  /// Doc queries refused by admission control (ResourceExhausted).
  uint64_t shed = 0;

  void Add(const DocQueryStats& other) {
    queries += other.queries;
    offsets_resolved += other.offsets_resolved;
    offsets_outside_documents += other.offsets_outside_documents;
    docs_matched += other.docs_matched;
    unavailable_queries += other.unavailable_queries;
    deadline_exceeded += other.deadline_exceeded;
    shed += other.shed;
  }
};

/// Read-side facade over a collection index directory (MANIFEST + DOCMAP).
class DocEngine {
 public:
  /// Opens the underlying QueryEngine and loads + checksum-verifies DOCMAP.
  static StatusOr<std::unique_ptr<DocEngine>> Open(
      Env* env, const std::string& index_dir,
      const QueryEngineOptions& options = QueryEngineOptions{});

  /// Number of distinct documents containing `pattern` (document frequency).
  /// Every call also has a QueryContext overload: the context's deadline and
  /// cancellation apply to the underlying Locate (checked at node-visit and
  /// device-read boundaries) and the call passes through admission control.
  StatusOr<uint64_t> CountDocs(const std::string& pattern);
  StatusOr<uint64_t> CountDocs(const QueryContext& ctx,
                               const std::string& pattern);

  /// The `k` documents with the most occurrences of `pattern`, ordered by
  /// descending occurrence count, ties by ascending doc id. Fewer than `k`
  /// entries when fewer documents match.
  StatusOr<std::vector<DocHit>> TopKDocuments(const std::string& pattern,
                                              std::size_t k);
  StatusOr<std::vector<DocHit>> TopKDocuments(const QueryContext& ctx,
                                              const std::string& pattern,
                                              std::size_t k);

  /// Occurrence offsets of `pattern` WITHIN document `doc_id` (document-
  /// local coordinates), ascending.
  StatusOr<std::vector<uint64_t>> LocateInDoc(const std::string& pattern,
                                              uint32_t doc_id);
  StatusOr<std::vector<uint64_t>> LocateInDoc(const QueryContext& ctx,
                                              const std::string& pattern,
                                              uint32_t doc_id);

  /// Per-document occurrence histogram for `pattern`, ascending doc id.
  /// (CountDocs/TopKDocuments are views of this.)
  StatusOr<std::vector<DocHit>> DocumentHistogram(const std::string& pattern);
  StatusOr<std::vector<DocHit>> DocumentHistogram(const QueryContext& ctx,
                                                  const std::string& pattern);

  /// Batched variants; answers are index-aligned with `patterns`. The
  /// context overloads share one deadline across the batch and stop
  /// mid-flight when it expires (remaining items are not attempted).
  StatusOr<std::vector<uint64_t>> CountDocsBatch(
      const std::vector<std::string>& patterns);
  StatusOr<std::vector<uint64_t>> CountDocsBatch(
      const QueryContext& ctx, const std::vector<std::string>& patterns);
  StatusOr<std::vector<std::vector<DocHit>>> TopKDocumentsBatch(
      const std::vector<std::string>& patterns, std::size_t k);
  StatusOr<std::vector<std::vector<DocHit>>> TopKDocumentsBatch(
      const QueryContext& ctx, const std::vector<std::string>& patterns,
      std::size_t k);

  /// Distinct-document counts (document frequency) for a whole dictionary
  /// in one batched pass: patterns share descents and leaf enumeration
  /// through QueryEngine::MatchDictionary — one sub-tree open and one leaf
  /// pass per touched sub-tree, regardless of dictionary size — then each
  /// pattern's ascending offsets fold through the DocumentMap with the
  /// usual merge pass. Outcomes are index-aligned with `patterns` and
  /// follow the per-item CountOutcome contract (`count` = distinct
  /// documents containing the pattern); the outer status is non-OK only
  /// when the batch never ran.
  StatusOr<std::vector<CountOutcome>> CountDocsDictionary(
      const std::vector<std::string>& patterns);
  StatusOr<std::vector<CountOutcome>> CountDocsDictionary(
      const QueryContext& ctx, const std::vector<std::string>& patterns);

  const DocumentMap& documents() const { return documents_; }
  /// The underlying pattern engine (plain Count/Locate over the combined
  /// text, cache snapshots, I/O counters).
  QueryEngine& engine() { return *engine_; }
  /// Snapshot of the aggregate document-query counters.
  DocQueryStats doc_stats() const;

  /// Serving-degradation views, re-exported so collection callers see
  /// quarantined sub-trees and overload counters without reaching into
  /// engine().
  std::map<uint32_t, uint64_t> quarantine() const {
    return engine_->quarantine();
  }
  ServingStats serving() const { return engine_->serving(); }
  /// Graceful shutdown passthroughs (see QueryEngine::Drain).
  void Drain() { engine_->Drain(); }
  void Resume() { engine_->Resume(); }

 private:
  DocEngine(std::unique_ptr<QueryEngine> engine, DocumentMap documents)
      : engine_(std::move(engine)), documents_(std::move(documents)) {}

  /// Rejects patterns that could only match across the concatenated layout.
  Status ValidatePattern(const std::string& pattern) const;

  /// Histogram core: one Locate + one merge pass; per-call counters are
  /// accumulated into `stats`.
  StatusOr<std::vector<DocHit>> HistogramWithStats(const QueryContext& ctx,
                                                   const std::string& pattern,
                                                   DocQueryStats* stats);

  /// The merge pass itself (ascending global offsets -> per-document
  /// histogram), shared by the single-pattern and dictionary paths.
  std::vector<DocHit> HistogramFromOffsets(const std::vector<uint64_t>& offsets,
                                           DocQueryStats* stats) const;

  void FoldStats(const DocQueryStats& stats);

  /// Bills a failed doc query's status into the degradation counters.
  static void ClassifyFailure(const Status& status, DocQueryStats* stats);

  std::unique_ptr<QueryEngine> engine_;
  DocumentMap documents_;

  mutable std::mutex mu_;
  DocQueryStats stats_;

  /// Exporter wiring: a registry collector translating stats_ into
  /// era_doc_* samples (registered by Open when the underlying engine has
  /// metrics enabled; see doc_engine.cc).
  MetricsRegistry* registry_ = nullptr;
  uint64_t collector_id_ = 0;

 public:
  ~DocEngine();
};

/// Sorts a document histogram into TopK order (occurrences descending, doc
/// id ascending) and truncates to `k`. Exposed for tests and benches.
std::vector<DocHit> TopKFromHistogram(std::vector<DocHit> histogram,
                                      std::size_t k);

}  // namespace era

#endif  // ERA_COLLECTION_DOC_ENGINE_H_
