#include "collection/doc_engine.h"

#include <algorithm>

#include "alphabet/alphabet.h"

namespace era {

StatusOr<std::unique_ptr<DocEngine>> DocEngine::Open(
    Env* env, const std::string& index_dir, const QueryEngineOptions& options) {
  ERA_ASSIGN_OR_RETURN(std::unique_ptr<QueryEngine> engine,
                       QueryEngine::Open(env, index_dir, options));
  ERA_ASSIGN_OR_RETURN(
      DocumentMap documents,
      DocumentMap::Load(env, index_dir + "/" + kDocMapFilename));
  std::unique_ptr<DocEngine> doc(
      new DocEngine(std::move(engine), std::move(documents)));
  if (options.metrics_enabled) {
    // The doc-level counters stay in the mutex-folded struct (it is tiny
    // and cold); a collector translates it into era_doc_* samples at
    // snapshot time so the exporters and the CLI degradation printer see
    // collection serving alongside everything else.
    static std::atomic<uint64_t> next_instance{0};
    const MetricLabels labels = {
        {"collection",
         std::to_string(next_instance.fetch_add(1,
                                                std::memory_order_relaxed))}};
    doc->registry_ = options.registry != nullptr ? options.registry
                                                 : MetricsRegistry::Global();
    DocEngine* raw = doc.get();
    doc->collector_id_ = doc->registry_->AddCollector(
        [raw, labels](std::vector<MetricSample>* samples) {
          const DocQueryStats stats = raw->doc_stats();
          auto add = [&](const char* name, const char* help, uint64_t value) {
            MetricSample sample;
            sample.name = name;
            sample.help = help;
            sample.kind = MetricKind::kCounter;
            sample.labels = labels;
            sample.value = static_cast<double>(value);
            samples->push_back(std::move(sample));
          };
          add("era_doc_queries_total", "Completed doc-level calls",
              stats.queries);
          add("era_doc_offsets_resolved_total",
              "Occurrence offsets folded through the DocumentMap",
              stats.offsets_resolved);
          add("era_doc_offsets_outside_documents_total",
              "Offsets resolving to no document (layout bug flag)",
              stats.offsets_outside_documents);
          add("era_doc_docs_matched_total",
              "Sum over queries of distinct matching documents",
              stats.docs_matched);
          add("era_doc_unavailable_queries_total",
              "Doc queries failed Unavailable (quarantined sub-tree)",
              stats.unavailable_queries);
          add("era_doc_deadline_exceeded_total",
              "Doc queries abandoned by deadline expiry or cancellation",
              stats.deadline_exceeded);
          add("era_doc_shed_total",
              "Doc queries refused by admission control", stats.shed);
        });
  }
  return doc;
}

DocEngine::~DocEngine() {
  if (registry_ != nullptr && collector_id_ != 0) {
    registry_->RemoveCollector(collector_id_);
  }
}

Status DocEngine::ValidatePattern(const std::string& pattern) const {
  if (pattern.empty()) return Status::InvalidArgument("empty pattern");
  if (pattern.find(documents_.separator()) != std::string::npos) {
    return Status::InvalidArgument(
        "pattern contains the reserved document separator");
  }
  if (pattern.find(kTerminal) != std::string::npos) {
    return Status::InvalidArgument("pattern contains the terminal byte");
  }
  return Status::OK();
}

void DocEngine::ClassifyFailure(const Status& status, DocQueryStats* stats) {
  if (status.IsUnavailable()) {
    ++stats->unavailable_queries;
  } else if (status.IsDeadlineExceeded() || status.IsCancelled()) {
    ++stats->deadline_exceeded;
  } else if (status.IsResourceExhausted()) {
    ++stats->shed;
  }
}

StatusOr<std::vector<DocHit>> DocEngine::HistogramWithStats(
    const QueryContext& ctx, const std::string& pattern,
    DocQueryStats* stats) {
  ERA_RETURN_NOT_OK(ValidatePattern(pattern));
  ++stats->queries;
  // All occurrences, from the match node's contiguous descendant leaf-slot
  // range (ascending after Locate's sort).
  auto located = engine_->Locate(ctx, pattern);
  if (!located.ok()) {
    ClassifyFailure(located.status(), stats);
    return located.status();
  }
  return HistogramFromOffsets(*located, stats);
}

std::vector<DocHit> DocEngine::HistogramFromOffsets(
    const std::vector<uint64_t>& offsets, DocQueryStats* stats) const {
  // Offsets ascend and document spans ascend, so grouping by document is a
  // single forward pass; Resolve's binary search only re-runs when an offset
  // leaves the current span.
  std::vector<DocHit> histogram;
  DocLocation loc;
  uint64_t span_end = 0;
  bool have_doc = false;
  for (uint64_t offset : offsets) {
    ++stats->offsets_resolved;
    if (have_doc && offset < span_end &&
        offset >= documents_.document(loc.doc_id).start) {
      ++histogram.back().occurrences;
      continue;
    }
    if (!documents_.Resolve(offset, &loc)) {
      // A pattern over the document alphabet can never start on a separator
      // or terminal byte; counted defensively rather than erroring so a
      // corrupt layout surfaces in stats instead of failing reads.
      ++stats->offsets_outside_documents;
      have_doc = false;
      continue;
    }
    const DocumentSpan& doc = documents_.document(loc.doc_id);
    span_end = doc.start + doc.length;
    have_doc = true;
    histogram.push_back({loc.doc_id, 1});
  }
  stats->docs_matched += histogram.size();
  return histogram;
}

void DocEngine::FoldStats(const DocQueryStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Add(stats);
}

DocQueryStats DocEngine::doc_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

StatusOr<std::vector<DocHit>> DocEngine::DocumentHistogram(
    const std::string& pattern) {
  return DocumentHistogram(QueryContext::Background(), pattern);
}

StatusOr<std::vector<DocHit>> DocEngine::DocumentHistogram(
    const QueryContext& ctx, const std::string& pattern) {
  DocQueryStats stats;
  auto histogram = HistogramWithStats(ctx, pattern, &stats);
  FoldStats(stats);
  return histogram;
}

StatusOr<uint64_t> DocEngine::CountDocs(const std::string& pattern) {
  return CountDocs(QueryContext::Background(), pattern);
}

StatusOr<uint64_t> DocEngine::CountDocs(const QueryContext& ctx,
                                        const std::string& pattern) {
  ERA_ASSIGN_OR_RETURN(std::vector<DocHit> histogram,
                       DocumentHistogram(ctx, pattern));
  return static_cast<uint64_t>(histogram.size());
}

std::vector<DocHit> TopKFromHistogram(std::vector<DocHit> histogram,
                                      std::size_t k) {
  std::sort(histogram.begin(), histogram.end(),
            [](const DocHit& a, const DocHit& b) {
              if (a.occurrences != b.occurrences) {
                return a.occurrences > b.occurrences;
              }
              return a.doc_id < b.doc_id;
            });
  if (histogram.size() > k) histogram.resize(k);
  return histogram;
}

StatusOr<std::vector<DocHit>> DocEngine::TopKDocuments(
    const std::string& pattern, std::size_t k) {
  return TopKDocuments(QueryContext::Background(), pattern, k);
}

StatusOr<std::vector<DocHit>> DocEngine::TopKDocuments(
    const QueryContext& ctx, const std::string& pattern, std::size_t k) {
  ERA_ASSIGN_OR_RETURN(std::vector<DocHit> histogram,
                       DocumentHistogram(ctx, pattern));
  return TopKFromHistogram(std::move(histogram), k);
}

StatusOr<std::vector<uint64_t>> DocEngine::LocateInDoc(
    const std::string& pattern, uint32_t doc_id) {
  return LocateInDoc(QueryContext::Background(), pattern, doc_id);
}

StatusOr<std::vector<uint64_t>> DocEngine::LocateInDoc(
    const QueryContext& ctx, const std::string& pattern, uint32_t doc_id) {
  if (doc_id >= documents_.num_documents()) {
    return Status::InvalidArgument("document id out of range");
  }
  ERA_RETURN_NOT_OK(ValidatePattern(pattern));
  DocQueryStats stats;
  ++stats.queries;
  auto located = engine_->Locate(ctx, pattern);
  if (!located.ok()) {
    ClassifyFailure(located.status(), &stats);
    FoldStats(stats);
    return located.status();
  }
  std::vector<uint64_t> offsets = std::move(*located);
  const DocumentSpan& doc = documents_.document(doc_id);
  // Offsets are ascending: the document's occurrences are one contiguous
  // run, found by binary search.
  auto begin =
      std::lower_bound(offsets.begin(), offsets.end(), doc.start);
  auto end =
      std::lower_bound(begin, offsets.end(), doc.start + doc.length);
  std::vector<uint64_t> local;
  local.reserve(static_cast<std::size_t>(end - begin));
  for (auto it = begin; it != end; ++it) local.push_back(*it - doc.start);
  stats.offsets_resolved += local.size();
  if (!local.empty()) ++stats.docs_matched;
  FoldStats(stats);
  return local;
}

StatusOr<std::vector<uint64_t>> DocEngine::CountDocsBatch(
    const std::vector<std::string>& patterns) {
  return CountDocsBatch(QueryContext::Background(), patterns);
}

StatusOr<std::vector<uint64_t>> DocEngine::CountDocsBatch(
    const QueryContext& ctx, const std::vector<std::string>& patterns) {
  DocQueryStats stats;
  std::vector<uint64_t> counts;
  counts.reserve(patterns.size());
  for (const std::string& pattern : patterns) {
    auto histogram = HistogramWithStats(ctx, pattern, &stats);
    if (!histogram.ok()) {
      FoldStats(stats);
      return histogram.status();
    }
    counts.push_back(histogram->size());
  }
  FoldStats(stats);
  return counts;
}

StatusOr<std::vector<CountOutcome>> DocEngine::CountDocsDictionary(
    const std::vector<std::string>& patterns) {
  return CountDocsDictionary(QueryContext::Background(), patterns);
}

StatusOr<std::vector<CountOutcome>> DocEngine::CountDocsDictionary(
    const QueryContext& ctx, const std::vector<std::string>& patterns) {
  DocQueryStats stats;
  std::vector<CountOutcome> outcomes(patterns.size());
  // Per-item validation up front (the dictionary layer below only rejects
  // empty patterns); only valid patterns enter the shared pass.
  std::vector<std::string> valid;
  std::vector<std::size_t> item_of;
  valid.reserve(patterns.size());
  item_of.reserve(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    Status v = ValidatePattern(patterns[i]);
    if (!v.ok()) {
      outcomes[i].status = v;
      continue;
    }
    valid.push_back(patterns[i]);
    item_of.push_back(i);
  }
  DictMatchOptions options;
  options.locate = true;
  auto dict = engine_->MatchDictionary(ctx, valid, options);
  if (!dict.ok()) {
    // The pass never ran (shed, or no reader session): propagate like the
    // other batch entry points.
    ClassifyFailure(dict.status(), &stats);
    FoldStats(stats);
    return dict.status();
  }
  for (std::size_t k = 0; k < dict->size(); ++k) {
    CountOutcome& out = outcomes[item_of[k]];
    const DictOutcome& item = (*dict)[k];
    if (!item.status.ok()) {
      out.status = item.status;
      ClassifyFailure(item.status, &stats);
      continue;
    }
    ++stats.queries;
    out.count = HistogramFromOffsets(item.offsets, &stats).size();
  }
  FoldStats(stats);
  return outcomes;
}

StatusOr<std::vector<std::vector<DocHit>>> DocEngine::TopKDocumentsBatch(
    const std::vector<std::string>& patterns, std::size_t k) {
  return TopKDocumentsBatch(QueryContext::Background(), patterns, k);
}

StatusOr<std::vector<std::vector<DocHit>>> DocEngine::TopKDocumentsBatch(
    const QueryContext& ctx, const std::vector<std::string>& patterns,
    std::size_t k) {
  DocQueryStats stats;
  std::vector<std::vector<DocHit>> results;
  results.reserve(patterns.size());
  for (const std::string& pattern : patterns) {
    auto histogram = HistogramWithStats(ctx, pattern, &stats);
    if (!histogram.ok()) {
      FoldStats(stats);
      return histogram.status();
    }
    results.push_back(TopKFromHistogram(std::move(*histogram), k));
  }
  FoldStats(stats);
  return results;
}

}  // namespace era
