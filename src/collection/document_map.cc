#include "collection/document_map.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "alphabet/alphabet.h"
#include "common/crc32.h"

namespace era {

namespace {

constexpr char kMagic[8] = {'E', 'R', 'A', 'D', 'O', 'C', 'M', 'P'};
constexpr uint32_t kVersion = 1;

void PutU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

/// Cursor over the payload; every read is bounds-checked so a truncated or
/// bit-flipped length field can never drive reads past the buffer.
struct PayloadReader {
  const std::string& data;
  std::size_t pos = 0;

  template <typename T>
  Status Get(T* out) {
    if (data.size() - pos < sizeof(T)) {
      return Status::Corruption("DOCMAP payload truncated");
    }
    std::memcpy(out, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return Status::OK();
  }

  Status GetString(std::size_t n, std::string* out) {
    if (data.size() - pos < n) {
      return Status::Corruption("DOCMAP payload truncated");
    }
    out->assign(data.data() + pos, n);
    pos += n;
    return Status::OK();
  }
};

}  // namespace

StatusOr<DocumentMap> DocumentMap::Create(std::vector<DocumentSpan> documents,
                                          char separator) {
  if (separator == kTerminal) {
    return Status::InvalidArgument(
        "separator must differ from the terminal byte");
  }
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < documents.size(); ++i) {
    const DocumentSpan& doc = documents[i];
    if (doc.name.empty()) {
      return Status::InvalidArgument("document " + std::to_string(i) +
                                     " has an empty name");
    }
    if (!names.insert(doc.name).second) {
      return Status::InvalidArgument("duplicate document name: " + doc.name);
    }
    // All arithmetic below is in subtraction form so a hostile DOCMAP with
    // near-UINT64_MAX fields cannot wrap its way past validation.
    if (doc.length > UINT64_MAX - doc.start) {
      return Status::InvalidArgument("document span overflows: " + doc.name);
    }
    if (i > 0) {
      const DocumentSpan& prev = documents[i - 1];
      // At least one separator byte must sit between consecutive documents;
      // this is what makes cross-document matches impossible.
      if (doc.start <= prev.start ||
          doc.start - prev.start - 1 < prev.length) {
        return Status::InvalidArgument(
            "document spans overlap or are not separator-gapped: " +
            prev.name + " and " + doc.name);
      }
    }
  }
  DocumentMap map;
  map.documents_ = std::move(documents);
  map.separator_ = separator;
  return map;
}

bool DocumentMap::Resolve(uint64_t global_offset, DocLocation* out) const {
  // First document whose start is > offset; only its predecessor can
  // contain the offset (spans are disjoint and ascending).
  auto it = std::upper_bound(
      documents_.begin(), documents_.end(), global_offset,
      [](uint64_t off, const DocumentSpan& doc) { return off < doc.start; });
  if (it == documents_.begin()) return false;
  --it;
  if (global_offset - it->start >= it->length) return false;  // separator etc.
  out->doc_id = static_cast<uint32_t>(it - documents_.begin());
  out->local_offset = global_offset - it->start;
  return true;
}

bool DocumentMap::ResolveSpan(uint64_t global_offset, uint64_t length,
                              DocLocation* out) const {
  DocLocation loc;
  if (!Resolve(global_offset, &loc)) return false;
  const DocumentSpan& doc = documents_[loc.doc_id];
  if (length > doc.length - loc.local_offset) return false;
  *out = loc;
  return true;
}

StatusOr<uint32_t> DocumentMap::FindDocument(const std::string& name) const {
  for (std::size_t i = 0; i < documents_.size(); ++i) {
    if (documents_[i].name == name) return static_cast<uint32_t>(i);
  }
  return Status::NotFound("no document named " + name);
}

uint64_t DocumentMap::TotalDocumentBytes() const {
  uint64_t total = 0;
  for (const DocumentSpan& doc : documents_) total += doc.length;
  return total;
}

Status DocumentMap::Save(Env* env, const std::string& path) const {
  std::string payload;
  PutU32(&payload, kVersion);
  payload.push_back(separator_);
  PutU32(&payload, static_cast<uint32_t>(documents_.size()));
  for (const DocumentSpan& doc : documents_) {
    PutU64(&payload, doc.start);
    PutU64(&payload, doc.length);
    PutU32(&payload, static_cast<uint32_t>(doc.name.size()));
    payload += doc.name;
  }
  std::string file(kMagic, sizeof(kMagic));
  file += payload;
  PutU32(&file, Crc32c(payload.data(), payload.size()));
  // Atomic + durable: a crashed collection build leaves either the previous
  // DOCMAP or the complete new one.
  return AtomicallyWriteFile(env, path, file);
}

StatusOr<DocumentMap> DocumentMap::Load(Env* env, const std::string& path) {
  std::string raw;
  if (Status s = env->ReadFileToString(path, &raw); !s.ok()) {
    return s.WithContext("loading DOCMAP " + path);
  }
  if (raw.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a DOCMAP file: " + path);
  }
  const std::string payload =
      raw.substr(sizeof(kMagic), raw.size() - sizeof(kMagic) - sizeof(uint32_t));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, raw.data() + raw.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (Crc32c(payload.data(), payload.size()) != stored_crc) {
    return Status::Corruption("DOCMAP checksum mismatch: " + path);
  }

  PayloadReader reader{payload};
  uint32_t version = 0;
  ERA_RETURN_NOT_OK(reader.Get(&version));
  if (version != kVersion) {
    return Status::NotSupported("unknown DOCMAP version " +
                                std::to_string(version) + " in " + path);
  }
  char separator = '\0';
  ERA_RETURN_NOT_OK(reader.Get(&separator));
  uint32_t count = 0;
  ERA_RETURN_NOT_OK(reader.Get(&count));
  std::vector<DocumentSpan> documents;
  documents.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DocumentSpan doc;
    ERA_RETURN_NOT_OK(reader.Get(&doc.start));
    ERA_RETURN_NOT_OK(reader.Get(&doc.length));
    uint32_t name_len = 0;
    ERA_RETURN_NOT_OK(reader.Get(&name_len));
    ERA_RETURN_NOT_OK(reader.GetString(name_len, &doc.name));
    documents.push_back(std::move(doc));
  }
  if (reader.pos != payload.size()) {
    return Status::Corruption("DOCMAP payload has trailing bytes in " + path);
  }
  // Re-validate through Create so a checksum-valid but structurally bad file
  // (hand-edited, version-skewed writer) still fails closed.
  auto map = Create(std::move(documents), separator);
  if (!map.ok()) return map.status().WithContext("loading DOCMAP " + path);
  return map;
}

StatusOr<GeneralizedCollection> ConcatenateCollection(
    const std::vector<CollectionDocument>& documents, char separator) {
  if (documents.empty()) return Status::InvalidArgument("no documents");
  if (separator == kTerminal) {
    return Status::InvalidArgument(
        "separator must differ from the terminal byte");
  }
  GeneralizedCollection out;
  std::vector<DocumentSpan> spans;
  spans.reserve(documents.size());
  for (std::size_t d = 0; d < documents.size(); ++d) {
    const CollectionDocument& doc = documents[d];
    if (doc.body.find(separator) != std::string::npos) {
      return Status::InvalidArgument("document " + doc.name +
                                     " contains the separator byte");
    }
    if (doc.body.find(kTerminal) != std::string::npos) {
      return Status::InvalidArgument("document " + doc.name +
                                     " contains the terminal byte");
    }
    spans.push_back({doc.name, out.text.size(), doc.body.size()});
    out.text += doc.body;
    // Every document is separator-closed (the last one by the terminal
    // below), so suffixes of one document never continue into the next
    // without passing a reserved byte.
    if (d + 1 < documents.size()) out.text.push_back(separator);
  }
  out.text.push_back(kTerminal);
  ERA_ASSIGN_OR_RETURN(out.documents,
                       DocumentMap::Create(std::move(spans), separator));
  return out;
}

}  // namespace era
